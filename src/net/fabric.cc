#include "net/fabric.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/trace.h"

namespace tli::net {

Fabric::Fabric(sim::Simulation &sim, const Topology &topo,
               const FabricParams &params)
    : sim_(sim), topo_(topo), params_(params),
      jitterRng_(params.jitterSeed),
      lossRng_(params.impairments.lossSeed)
{
    TLI_ASSERT(params.wanJitter >= 0 && params.wanJitter <= 1,
               "wanJitter must be within [0, 1]");
    const Impairments &imp = params.impairments;
    TLI_ASSERT(imp.lossRate >= 0 && imp.lossRate < 1,
               "lossRate must be within [0, 1)");
    TLI_ASSERT(imp.outageStart >= 0 && imp.outageDuration >= 0 &&
                   imp.outagePeriod >= 0,
               "negative outage timing");
    TLI_ASSERT(imp.outagePeriod <= 0 ||
                   imp.outagePeriod > imp.outageDuration,
               "outage period must exceed the outage duration");
    const int ranks = topo_.totalRanks();
    const int clusters = topo_.clusterCount();
    nics_.reserve(ranks);
    for (int i = 0; i < ranks; ++i)
        nics_.emplace_back(params_.local);
    // The ordering table (lastDelivery_) starts empty: construction
    // cost is O(ranks), not O(ranks^2), and memory grows only with
    // pairs that actually communicate.
    std::size_t wan_count =
        params_.wanTopology == WanTopology::fullyConnected
            ? static_cast<std::size_t>(clusters) * clusters
            : 2 * static_cast<std::size_t>(clusters);
    wanLinks_.reserve(wan_count);
    LinkParams wan_link = params_.wide;
    if (params_.wanTopology == WanTopology::star) {
        // Two serializing segments per transfer; split the one-way
        // latency and per-message cost between them.
        wan_link.latency /= 2;
        wan_link.perMessageCost /= 2;
    }
    for (std::size_t i = 0; i < wan_count; ++i)
        wanLinks_.emplace_back(wan_link);
    gatewayOut_.reserve(clusters);
    gatewayIn_.reserve(clusters);
    LinkParams inbound = params_.gateway;
    inbound.latency += params_.local.latency; // final local hop
    for (int i = 0; i < clusters; ++i) {
        gatewayOut_.emplace_back(params_.gateway);
        gatewayIn_.emplace_back(inbound);
    }
    interPerCluster_.resize(clusters);
}

void
Fabric::send(Rank src, Rank dst, std::uint64_t bytes,
             sim::EventFn deliver)
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);

    Time arrival;
    if (src == dst) {
        // Loopback: charge only the per-message protocol cost.
        arrival = now + params_.local.perMessageCost;
        intra_.messages += 1;
        intra_.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, false,
                          false, sc, dc, now, arrival, arrival,
                          arrival, arrival});
        }
    } else if (sc == dc) {
        arrival = nics_[src].transmit(now, bytes);
        intra_.messages += 1;
        intra_.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, false,
                          false, sc, dc, now, arrival, arrival,
                          arrival, arrival});
        }
    } else {
        // Hop to the local gateway over the sender's NIC...
        Time at_gateway = nics_[src].transmit(now, bytes);
        // ...through the gateway's protocol stack...
        Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
        // ...and, if the impairment model lets it through, across the
        // wide area. A lost message has occupied the NIC and source
        // gateway; it never reaches a WAN link and never delivers.
        Time wan_at = gw_done;
        if (!admitWan(wan_at)) {
            intra_.messages += 1;
            intra_.bytes += bytes;
            if (auto *t = sim_.trace()) {
                t->onMessage({traceSeq_++, src, dst, 1, bytes, true,
                              true, sc, dc, now, at_gateway, gw_done,
                              gw_done, gw_done});
            }
            return;
        }
        Time at_remote_gw = wanTransit(sc, dc, wan_at, bytes);
        // ...and through the remote gateway to the target.
        arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
        arrival = inOrder(src, dst, arrival + wanLatencyAdjust());

        intra_.messages += 2; // gateway hops on both sides
        intra_.bytes += 2 * bytes;
        inter_.messages += 1;
        inter_.bytes += bytes;
        wanTransit_ += at_remote_gw - gw_done;
        LinkStats &per = interPerCluster_[sc];
        per.messages += 1;
        per.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, true,
                          false, sc, dc, now, at_gateway, gw_done,
                          at_remote_gw, arrival});
        }
    }

    sim_.scheduleAt(arrival, std::move(deliver));
}

Time
Fabric::probeArrival(Rank src, Rank dst, std::uint64_t bytes) const
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);
    if (src == dst)
        return now + params_.local.perMessageCost;
    if (sc == dc)
        return nics_[src].probeTransmit(now, bytes);
    Time a = nics_[src].probeTransmit(now, bytes);
    Time g = gatewayOut_[sc].probeTransmit(a, bytes);
    Time b = probeWanTransit(sc, dc, g, bytes);
    return gatewayIn_[dc].probeTransmit(b, bytes);
}

void
Fabric::multicastLocal(Rank src, const std::vector<Rank> &dsts,
                       std::uint64_t bytes,
                       std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    Time arrival = nics_[src].transmit(now, bytes);
    intra_.messages += 1;
    intra_.bytes += bytes;
    if (auto *t = sim_.trace()) {
        const ClusterId sc = topo_.clusterOf(src);
        t->onMessage({traceSeq_++, src, dsts.front(),
                      static_cast<int>(dsts.size()), bytes, false,
                      false, sc, sc, now, arrival, arrival, arrival,
                      arrival});
    }
    // Share one copy of the handler: the per-destination events then
    // capture (shared_ptr, Rank), which stays inside EventFn's inline
    // buffer regardless of the handler's own capture size.
    auto handler =
        std::make_shared<std::function<void(Rank)>>(std::move(deliver));
    for (Rank d : dsts) {
        TLI_ASSERT(topo_.sameCluster(src, d),
                   "multicastLocal crosses clusters");
        sim_.scheduleAt(arrival, [handler, d] { (*handler)(d); });
    }
}

void
Fabric::multicastToCluster(Rank src, ClusterId dc,
                           const std::vector<Rank> &dsts,
                           std::uint64_t bytes,
                           std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    TLI_ASSERT(sc != dc, "multicastToCluster used for the local cluster");

    Time at_gateway = nics_[src].transmit(now, bytes);
    Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
    // The bundle crosses the wide area as one transfer, so one loss
    // draw (or outage window) claims the whole fan-out.
    Time wan_at = gw_done;
    if (!admitWan(wan_at)) {
        intra_.messages += 1;
        intra_.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dsts.front(),
                          static_cast<int>(dsts.size()), bytes, true,
                          true, sc, dc, now, at_gateway, gw_done,
                          gw_done, gw_done});
        }
        return;
    }
    Time at_remote_gw = wanTransit(sc, dc, wan_at, bytes);
    // One inbound pass fans out to all members of the cluster.
    Time arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
    // The whole bundle shares one jitter draw and one delivery time;
    // clamp that time against every destination's ordering horizon
    // first, then record it once per destination.
    arrival += wanLatencyAdjust();
    for (Rank d : dsts)
        arrival = std::max(arrival, lastDelivery_.get(src, d));

    intra_.messages += 2;
    intra_.bytes += 2 * bytes;
    inter_.messages += 1;
    inter_.bytes += bytes;
    wanTransit_ += at_remote_gw - gw_done;
    LinkStats &per = interPerCluster_[sc];
    per.messages += 1;
    per.bytes += bytes;
    if (auto *t = sim_.trace()) {
        t->onMessage({traceSeq_++, src, dsts.front(),
                      static_cast<int>(dsts.size()), bytes, true,
                      false, sc, dc, now, at_gateway, gw_done,
                      at_remote_gw, arrival});
    }

    auto handler =
        std::make_shared<std::function<void(Rank)>>(std::move(deliver));
    for (Rank d : dsts) {
        TLI_ASSERT(topo_.clusterOf(d) == dc,
                   "multicast destination outside target cluster");
        lastDelivery_.ref(src, d) = arrival;
        sim_.scheduleAt(arrival, [handler, d] { (*handler)(d); });
    }
}

const char *
wanTopologyName(WanTopology t)
{
    switch (t) {
      case WanTopology::fullyConnected:
        return "fully-connected";
      case WanTopology::star:
        return "star";
      case WanTopology::ring:
        return "ring";
    }
    return "?";
}

template <typename HopFn>
Time
Fabric::routeWan(ClusterId sc, ClusterId dc, Time at,
                 std::uint64_t bytes, HopFn &&hop) const
{
    const int clusters = topo_.clusterCount();
    switch (params_.wanTopology) {
      case WanTopology::fullyConnected:
        return hop(wanPairIndex(sc, dc), at, bytes);

      case WanTopology::star: {
        // Up through the source cluster's access link [sc], down
        // through the destination's [clusters + dc].
        Time mid = hop(static_cast<std::size_t>(sc), at, bytes);
        return hop(static_cast<std::size_t>(clusters) + dc, mid, bytes);
      }

      case WanTopology::ring: {
        // Take the shorter arc, store-and-forward per hop: clockwise
        // hop links are [c], counterclockwise ones [clusters + c].
        int cw = (dc - sc + clusters) % clusters;
        int ccw = (sc - dc + clusters) % clusters;
        Time t = at;
        if (cw <= ccw) {
            for (ClusterId c = sc; c != dc;
                 c = (c + 1) % clusters) {
                t = hop(static_cast<std::size_t>(c), t, bytes);
            }
        } else {
            for (ClusterId c = sc; c != dc;
                 c = (c + clusters - 1) % clusters) {
                t = hop(static_cast<std::size_t>(clusters) + c, t,
                        bytes);
            }
        }
        return t;
      }
    }
    TLI_PANIC("unreachable wan topology");
}

Time
Fabric::wanTransit(ClusterId sc, ClusterId dc, Time at,
                   std::uint64_t bytes)
{
    return routeWan(sc, dc, at, bytes,
                    [this](std::size_t link, Time t, std::uint64_t n) {
                        return wanLinks_[link].transmit(t, n);
                    });
}

Time
Fabric::probeWanTransit(ClusterId sc, ClusterId dc, Time at,
                        std::uint64_t bytes) const
{
    return routeWan(sc, dc, at, bytes,
                    [this](std::size_t link, Time t, std::uint64_t n) {
                        return wanLinks_[link].probeTransmit(t, n);
                    });
}

std::size_t
firstWanHopIndex(WanTopology topology, int clusters, ClusterId a,
                 ClusterId b)
{
    TLI_ASSERT(a >= 0 && a < clusters && b >= 0 && b < clusters,
               "wanLink cluster out of range: ", a, ", ", b);
    TLI_ASSERT(a != b, "wanLink needs distinct clusters, got ", a);
    switch (topology) {
      case WanTopology::fullyConnected:
        return static_cast<std::size_t>(a) * clusters + b;
      case WanTopology::star:
        // The up-link of the source cluster.
        return static_cast<std::size_t>(a);
      case WanTopology::ring: {
        int cw = (b - a + clusters) % clusters;
        int ccw = (a - b + clusters) % clusters;
        return cw <= ccw ? static_cast<std::size_t>(a)
                         : static_cast<std::size_t>(clusters) + a;
      }
    }
    TLI_PANIC("unreachable wan topology");
}

const LinkStats &
FabricStats::wanLink(ClusterId a, ClusterId b) const
{
    return wanLinks[firstWanHopIndex(wanTopology, clusters, a, b)]
        .stats;
}

double
FabricStats::maxWanUtilization(Time elapsed) const
{
    if (elapsed <= 0)
        return 0;
    Time busiest = 0;
    for (const WanLinkEntry &link : wanLinks)
        busiest = std::max(busiest, link.stats.busyTime);
    return busiest / elapsed;
}

bool
Fabric::admitWan(Time &at)
{
    const Impairments &imp = params_.impairments;
    if (!imp.active())
        return true;
    if (imp.outageDuration > 0 && imp.down(at)) {
        if (imp.outagePolicy == OutagePolicy::drop) {
            ++outageDrops_;
            return false;
        }
        // Queue at the gateway until the window ends, then compete
        // for the WAN link like any other message.
        at = imp.upAt(at);
    }
    // The loss draw is consumed only for messages that reach an "up"
    // wide area, so the loss stream is independent of outage phasing.
    if (imp.lossRate > 0 && lossRng_.uniform() < imp.lossRate) {
        ++lossDrops_;
        return false;
    }
    return true;
}

Time
Fabric::wanLatencyAdjust()
{
    if (params_.wanJitter <= 0)
        return 0;
    double u = jitterRng_.uniform(-1.0, 1.0);
    return params_.wide.latency * params_.wanJitter * u;
}

Time
Fabric::inOrder(Rank src, Rank dst, Time arrival)
{
    Time &last = lastDelivery_.ref(src, dst);
    if (arrival < last)
        arrival = last;
    last = arrival;
    return arrival;
}

FabricStats
Fabric::stats() const
{
    const int clusters = topo_.clusterCount();
    FabricStats s;
    s.wanTopology = params_.wanTopology;
    s.clusters = clusters;
    s.intra = intra_;
    s.inter = inter_;
    s.interPerCluster = interPerCluster_;
    s.wanTransit = wanTransit_;
    s.wanLossDrops = lossDrops_;
    s.wanOutageDrops = outageDrops_;
    s.orderedPairs = lastDelivery_.activePairs();
    s.orderingBytes = lastDelivery_.memoryBytes();
    s.delivery = delivery_;

    s.wanLinks.reserve(wanLinks_.size());
    const bool full =
        params_.wanTopology == WanTopology::fullyConnected;
    const bool star = params_.wanTopology == WanTopology::star;
    for (std::size_t i = 0; i < wanLinks_.size(); ++i) {
        WanLinkEntry e;
        e.stats = wanLinks_[i].stats();
        if (full) {
            e.a = static_cast<ClusterId>(i) / clusters;
            e.b = static_cast<ClusterId>(i) % clusters;
            e.kind = "pair";
        } else {
            const bool second = i >= static_cast<std::size_t>(clusters);
            e.a = static_cast<ClusterId>(
                i % static_cast<std::size_t>(clusters));
            e.kind = star ? (second ? "down" : "up")
                          : (second ? "ccw" : "cw");
        }
        s.wanLinks.push_back(e);
    }

    s.nics.reserve(nics_.size());
    for (const Link &nic : nics_)
        s.nics.push_back(nic.stats());
    s.gatewayOut.reserve(gatewayOut_.size());
    s.gatewayIn.reserve(gatewayIn_.size());
    for (int c = 0; c < clusters; ++c) {
        s.gatewayOut.push_back(gatewayOut_[c].stats());
        s.gatewayIn.push_back(gatewayIn_[c].stats());
    }
    return s;
}

void
Fabric::resetStats()
{
    intra_ = LinkStats{};
    inter_ = LinkStats{};
    for (auto &s : interPerCluster_)
        s = LinkStats{};
    wanTransit_ = 0;
    lossDrops_ = 0;
    outageDrops_ = 0;
    delivery_ = DeliveryStats{};
    for (Link &l : nics_)
        l.resetStats();
    for (Link &l : wanLinks_)
        l.resetStats();
    for (Link &l : gatewayOut_)
        l.resetStats();
    for (Link &l : gatewayIn_)
        l.resetStats();
    if (auto *t = sim_.trace())
        t->onMeasurementStart(sim_.now());
}

} // namespace tli::net
