#include "net/fabric.h"

#include <algorithm>
#include <utility>

namespace tli::net {

Fabric::Fabric(sim::Simulation &sim, const Topology &topo,
               const FabricParams &params)
    : sim_(sim), topo_(topo), params_(params),
      jitterRng_(params.jitterSeed)
{
    TLI_ASSERT(params.wanJitter >= 0 && params.wanJitter <= 1,
               "wanJitter must be within [0, 1]");
    const int ranks = topo_.totalRanks();
    const int clusters = topo_.clusterCount();
    nics_.reserve(ranks);
    for (int i = 0; i < ranks; ++i)
        nics_.emplace_back(params_.local);
    std::size_t wan_count =
        params_.wanTopology == WanTopology::fullyConnected
            ? static_cast<std::size_t>(clusters) * clusters
            : 2 * static_cast<std::size_t>(clusters);
    wanLinks_.reserve(wan_count);
    LinkParams wan_link = params_.wide;
    if (params_.wanTopology == WanTopology::star) {
        // Two serializing segments per transfer; split the one-way
        // latency and per-message cost between them.
        wan_link.latency /= 2;
        wan_link.perMessageCost /= 2;
    }
    for (std::size_t i = 0; i < wan_count; ++i)
        wanLinks_.emplace_back(wan_link);
    gatewayOut_.reserve(clusters);
    gatewayIn_.reserve(clusters);
    LinkParams inbound = params_.gateway;
    inbound.latency += params_.local.latency; // final local hop
    for (int i = 0; i < clusters; ++i) {
        gatewayOut_.emplace_back(params_.gateway);
        gatewayIn_.emplace_back(inbound);
    }
    stats_.interPerCluster.resize(clusters);
}

void
Fabric::send(Rank src, Rank dst, std::uint64_t bytes,
             std::function<void()> deliver)
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);

    Time arrival;
    if (src == dst) {
        // Loopback: charge only the per-message protocol cost.
        arrival = now + params_.local.perMessageCost;
        stats_.intra.messages += 1;
        stats_.intra.bytes += bytes;
    } else if (sc == dc) {
        arrival = nics_[src].transmit(now, bytes);
        stats_.intra.messages += 1;
        stats_.intra.bytes += bytes;
    } else {
        // Hop to the local gateway over the sender's NIC...
        Time at_gateway = nics_[src].transmit(now, bytes);
        // ...through the gateway's protocol stack...
        Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
        // ...across the wide area...
        Time at_remote_gw = wanTransit(sc, dc, gw_done, bytes);
        // ...and through the remote gateway to the target.
        arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
        arrival = inOrder(src, dst, arrival + wanLatencyAdjust());

        stats_.intra.messages += 2; // gateway hops on both sides
        stats_.intra.bytes += 2 * bytes;
        stats_.inter.messages += 1;
        stats_.inter.bytes += bytes;
        LinkStats &per = stats_.interPerCluster[sc];
        per.messages += 1;
        per.bytes += bytes;
    }

    sim_.scheduleAt(arrival, std::move(deliver));
}

Time
Fabric::probeArrival(Rank src, Rank dst, std::uint64_t bytes) const
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);
    auto xmit = [](const Link &link, Time at, std::uint64_t n) {
        Time start = at > link.busyUntil() ? at : link.busyUntil();
        return start + link.params().perMessageCost +
               static_cast<double>(n) / link.params().bandwidth +
               link.params().latency;
    };
    if (src == dst)
        return now + params_.local.perMessageCost;
    if (sc == dc)
        return xmit(nics_[src], now, bytes);
    Time a = xmit(nics_[src], now, bytes);
    Time g = xmit(gatewayOut_[sc], a, bytes);
    Time b = xmit(wanLinks_[wanIndex(sc, dc)], g, bytes);
    return xmit(gatewayIn_[dc], b, bytes);
}

void
Fabric::multicastLocal(Rank src, const std::vector<Rank> &dsts,
                       std::uint64_t bytes,
                       std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    Time arrival = nics_[src].transmit(now, bytes);
    stats_.intra.messages += 1;
    stats_.intra.bytes += bytes;
    for (Rank d : dsts) {
        TLI_ASSERT(topo_.sameCluster(src, d),
                   "multicastLocal crosses clusters");
        sim_.scheduleAt(arrival, [deliver, d] { deliver(d); });
    }
}

void
Fabric::multicastToCluster(Rank src, ClusterId dc,
                           const std::vector<Rank> &dsts,
                           std::uint64_t bytes,
                           std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    TLI_ASSERT(sc != dc, "multicastToCluster used for the local cluster");

    Time at_gateway = nics_[src].transmit(now, bytes);
    Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
    Time at_remote_gw = wanTransit(sc, dc, gw_done, bytes);
    // One inbound pass fans out to all members of the cluster.
    Time arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
    // The whole bundle shares one jitter draw; per-destination order
    // is preserved against earlier point-to-point traffic.
    Time adjust = wanLatencyAdjust();
    arrival += adjust;
    for (Rank d : dsts)
        arrival = std::max(arrival, inOrder(src, d, arrival));
    for (Rank d : dsts)
        lastDelivery_[{src, d}] = arrival;

    stats_.intra.messages += 2;
    stats_.intra.bytes += 2 * bytes;
    stats_.inter.messages += 1;
    stats_.inter.bytes += bytes;
    LinkStats &per = stats_.interPerCluster[sc];
    per.messages += 1;
    per.bytes += bytes;

    for (Rank d : dsts) {
        TLI_ASSERT(topo_.clusterOf(d) == dc,
                   "multicast destination outside target cluster");
        sim_.scheduleAt(arrival, [deliver, d] { deliver(d); });
    }
}

const char *
wanTopologyName(WanTopology t)
{
    switch (t) {
      case WanTopology::fullyConnected:
        return "fully-connected";
      case WanTopology::star:
        return "star";
      case WanTopology::ring:
        return "ring";
    }
    return "?";
}

Time
Fabric::wanTransit(ClusterId sc, ClusterId dc, Time at,
                   std::uint64_t bytes)
{
    const int clusters = topo_.clusterCount();
    switch (params_.wanTopology) {
      case WanTopology::fullyConnected:
        return wanLinks_[wanIndex(sc, dc)].transmit(at, bytes);

      case WanTopology::star: {
        // Up through the source cluster's access link, down through
        // the destination's.
        Time mid = wanLinks_[sc].transmit(at, bytes);
        return wanLinks_[clusters + dc].transmit(mid, bytes);
      }

      case WanTopology::ring: {
        // Take the shorter arc, store-and-forward per hop.
        int cw = (dc - sc + clusters) % clusters;
        int ccw = (sc - dc + clusters) % clusters;
        Time t = at;
        if (cw <= ccw) {
            for (ClusterId c = sc; c != dc;
                 c = (c + 1) % clusters) {
                t = wanLinks_[c].transmit(t, bytes);
            }
        } else {
            for (ClusterId c = sc; c != dc;
                 c = (c + clusters - 1) % clusters) {
                t = wanLinks_[clusters + c].transmit(t, bytes);
            }
        }
        return t;
      }
    }
    TLI_PANIC("unreachable wan topology");
}

Time
Fabric::wanLatencyAdjust()
{
    if (params_.wanJitter <= 0)
        return 0;
    double u = jitterRng_.uniform(-1.0, 1.0);
    return params_.wide.latency * params_.wanJitter * u;
}

Time
Fabric::inOrder(Rank src, Rank dst, Time arrival)
{
    Time &last = lastDelivery_[{src, dst}];
    if (arrival < last)
        arrival = last;
    last = arrival;
    return arrival;
}

double
Fabric::maxWanUtilization(Time elapsed) const
{
    if (elapsed <= 0)
        return 0;
    Time busiest = 0;
    for (const Link &link : wanLinks_) {
        if (link.stats().busyTime > busiest)
            busiest = link.stats().busyTime;
    }
    return busiest / elapsed;
}

void
Fabric::resetStats()
{
    stats_.intra = LinkStats{};
    stats_.inter = LinkStats{};
    for (auto &s : stats_.interPerCluster)
        s = LinkStats{};
}

} // namespace tli::net
