#include "net/fabric.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/trace.h"

namespace tli::net {

Fabric::Fabric(sim::Simulation &sim, const Topology &topo,
               const FabricParams &params)
    : sim_(sim), topo_(topo), params_(params),
      jitterRng_(params.jitterSeed),
      lossRng_(params.impairments.lossSeed)
{
    TLI_ASSERT(params.wanJitter >= 0 && params.wanJitter <= 1,
               "wanJitter must be within [0, 1]");
    const Impairments &imp = params.impairments;
    TLI_ASSERT(imp.lossRate >= 0 && imp.lossRate < 1,
               "lossRate must be within [0, 1)");
    TLI_ASSERT(imp.outageStart >= 0 && imp.outageDuration >= 0 &&
                   imp.outagePeriod >= 0,
               "negative outage timing");
    TLI_ASSERT(imp.outagePeriod <= 0 ||
                   imp.outagePeriod > imp.outageDuration,
               "outage period must exceed the outage duration");
    const int ranks = topo_.totalRanks();
    const int clusters = topo_.clusterCount();
    TLI_ASSERT(params_.wanShape.validateFor(clusters).empty(),
               "invalid wan shape: ",
               params_.wanShape.validateFor(clusters));
    nics_.reserve(ranks);
    for (int i = 0; i < ranks; ++i)
        nics_.emplace_back(params_.local);
    // The ordering table (lastDelivery_) starts empty: construction
    // cost is O(ranks), not O(ranks^2), and memory grows only with
    // pairs that actually communicate.
    const std::size_t wan_count =
        params_.wanShape.linkCount(clusters);
    wanLinks_.reserve(wan_count);
    const LinkParams wan_link =
        params_.wanShape.segmentParams(params_.wide);
    for (std::size_t i = 0; i < wan_count; ++i)
        wanLinks_.emplace_back(wan_link);
    gatewayOut_.reserve(clusters);
    gatewayIn_.reserve(clusters);
    LinkParams inbound = params_.gateway;
    inbound.latency += params_.local.latency; // final local hop
    for (int i = 0; i < clusters; ++i) {
        gatewayOut_.emplace_back(params_.gateway);
        gatewayIn_.emplace_back(inbound);
    }
    interPerCluster_.resize(clusters);
}

void
Fabric::send(Rank src, Rank dst, std::uint64_t bytes,
             sim::EventFn deliver)
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);

    Time arrival;
    if (src == dst) {
        // Loopback: charge only the per-message protocol cost.
        arrival = now + params_.local.perMessageCost;
        LinkStats &intra = intraCounters();
        intra.messages += 1;
        intra.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, false,
                          false, sc, dc, now, arrival, arrival,
                          arrival, arrival});
        }
    } else if (sc == dc) {
        arrival = nics_[src].transmit(now, bytes);
        LinkStats &intra = intraCounters();
        intra.messages += 1;
        intra.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, false,
                          false, sc, dc, now, arrival, arrival,
                          arrival, arrival});
        }
    } else {
        // Hop to the local gateway over the sender's NIC...
        Time at_gateway = nics_[src].transmit(now, bytes);
        // ...through the gateway's protocol stack...
        Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
        if (partitioned_ && sim_.inParallelPhase()) {
            // NIC and outbound gateway (shard-owned) are charged; the
            // shared wide-area half replays between windows.
            DeferredWan d;
            d.src = src;
            d.dst = dst;
            d.dc = dc;
            d.bytes = bytes;
            d.sendTime = now;
            const sim::Simulation::OpRef op = sim_.reserveOps(1);
            d.senderId = op.parent;
            d.opBase = op.index;
            d.gwDone = gw_done;
            d.deliver = std::move(deliver);
            outbox_[sim_.currentShard()].push_back(std::move(d));
            return;
        }
        // ...and, if the impairment model lets it through, across the
        // wide area. A lost message has occupied the NIC and source
        // gateway; it never reaches a WAN link and never delivers.
        Time wan_at = gw_done;
        if (!admitWan(wan_at)) {
            intra_.messages += 1;
            intra_.bytes += bytes;
            if (auto *t = sim_.trace()) {
                t->onMessage({traceSeq_++, src, dst, 1, bytes, true,
                              true, sc, dc, now, at_gateway, gw_done,
                              gw_done, gw_done});
            }
            return;
        }
        Time at_remote_gw = wanTransit(sc, dc, wan_at, bytes);
        // ...and through the remote gateway to the target.
        arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
        arrival = inOrder(src, dst, arrival + wanLatencyAdjust());

        intra_.messages += 2; // gateway hops on both sides
        intra_.bytes += 2 * bytes;
        inter_.messages += 1;
        inter_.bytes += bytes;
        wanTransit_ += at_remote_gw - gw_done;
        LinkStats &per = interPerCluster_[sc];
        per.messages += 1;
        per.bytes += bytes;
        if (auto *t = sim_.trace()) {
            t->onMessage({traceSeq_++, src, dst, 1, bytes, true,
                          false, sc, dc, now, at_gateway, gw_done,
                          at_remote_gw, arrival});
        }
    }

    // Under a partition the delivery must carry the destination
    // cluster's shard: in the setup phase this pins the receiving
    // coroutine's resumption to its own shard before the migration
    // into per-shard queues (a sender-shard tag would drag the
    // receiver's continuation onto the sender's shard for the rest of
    // the run). Cross-cluster sends never reach here mid-window —
    // they defer above — so this is always a same-shard or phase-A
    // schedule.
    if (partitioned_)
        sim_.scheduleOnShardAt(dc, arrival, std::move(deliver));
    else
        sim_.scheduleAt(arrival, std::move(deliver));
}

Time
Fabric::probeArrival(Rank src, Rank dst, std::uint64_t bytes) const
{
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    const ClusterId dc = topo_.clusterOf(dst);
    if (src == dst)
        return now + params_.local.perMessageCost;
    if (sc == dc)
        return nics_[src].probeTransmit(now, bytes);
    Time a = nics_[src].probeTransmit(now, bytes);
    Time g = gatewayOut_[sc].probeTransmit(a, bytes);
    Time b = probeWanTransit(sc, dc, g, bytes);
    return gatewayIn_[dc].probeTransmit(b, bytes);
}

void
Fabric::multicastLocal(Rank src, const std::vector<Rank> &dsts,
                       std::uint64_t bytes,
                       std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    Time arrival = nics_[src].transmit(now, bytes);
    LinkStats &intra = intraCounters();
    intra.messages += 1;
    intra.bytes += bytes;
    if (auto *t = sim_.trace()) {
        const ClusterId sc = topo_.clusterOf(src);
        sim::MessageTrace m{traceSeq_++, src, dsts.front(),
                            static_cast<int>(dsts.size()), bytes,
                            false, false, sc, sc, now, arrival,
                            arrival, arrival, arrival};
        m.fanoutDsts = dsts.data();
        t->onMessage(m);
    }
    // Share one copy of the handler: the per-destination events then
    // capture (shared_ptr, Rank), which stays inside EventFn's inline
    // buffer regardless of the handler's own capture size.
    auto handler =
        std::make_shared<std::function<void(Rank)>>(std::move(deliver));
    const ClusterId home = topo_.clusterOf(src);
    for (Rank d : dsts) {
        TLI_ASSERT(topo_.sameCluster(src, d),
                   "multicastLocal crosses clusters");
        if (partitioned_) {
            sim_.scheduleOnShardAt(home, arrival,
                                   [handler, d] { (*handler)(d); });
        } else {
            sim_.scheduleAt(arrival, [handler, d] { (*handler)(d); });
        }
    }
}

void
Fabric::multicastToCluster(Rank src, ClusterId dc,
                           const std::vector<Rank> &dsts,
                           std::uint64_t bytes,
                           std::function<void(Rank)> deliver)
{
    if (dsts.empty())
        return;
    const Time now = sim_.now();
    const ClusterId sc = topo_.clusterOf(src);
    TLI_ASSERT(sc != dc, "multicastToCluster used for the local cluster");

    Time at_gateway = nics_[src].transmit(now, bytes);
    Time gw_done = gatewayOut_[sc].transmit(at_gateway, bytes);
    if (partitioned_ && sim_.inParallelPhase()) {
        DeferredWan d;
        d.src = src;
        d.dc = dc;
        d.bytes = bytes;
        d.sendTime = now;
        const sim::Simulation::OpRef op =
            sim_.reserveOps(static_cast<std::uint32_t>(dsts.size()));
        d.senderId = op.parent;
        d.opBase = op.index;
        d.gwDone = gw_done;
        d.fanout = std::make_shared<std::function<void(Rank)>>(
            std::move(deliver));
        d.dsts = dsts;
        outbox_[sim_.currentShard()].push_back(std::move(d));
        return;
    }
    // The bundle crosses the wide area as one transfer, so one loss
    // draw (or outage window) claims the whole fan-out.
    Time wan_at = gw_done;
    if (!admitWan(wan_at)) {
        intra_.messages += 1;
        intra_.bytes += bytes;
        if (auto *t = sim_.trace()) {
            sim::MessageTrace m{traceSeq_++, src, dsts.front(),
                                static_cast<int>(dsts.size()), bytes,
                                true, true, sc, dc, now, at_gateway,
                                gw_done, gw_done, gw_done};
            m.fanoutDsts = dsts.data();
            t->onMessage(m);
        }
        return;
    }
    Time at_remote_gw = wanTransit(sc, dc, wan_at, bytes);
    // One inbound pass fans out to all members of the cluster.
    Time arrival = gatewayIn_[dc].transmit(at_remote_gw, bytes);
    // The whole bundle shares one jitter draw and one delivery time;
    // clamp that time against every destination's ordering horizon
    // first, then record it once per destination.
    arrival += wanLatencyAdjust();
    for (Rank d : dsts)
        arrival = std::max(arrival, lastDelivery_.get(src, d));

    intra_.messages += 2;
    intra_.bytes += 2 * bytes;
    inter_.messages += 1;
    inter_.bytes += bytes;
    wanTransit_ += at_remote_gw - gw_done;
    LinkStats &per = interPerCluster_[sc];
    per.messages += 1;
    per.bytes += bytes;
    if (auto *t = sim_.trace()) {
        sim::MessageTrace m{traceSeq_++, src, dsts.front(),
                            static_cast<int>(dsts.size()), bytes,
                            true, false, sc, dc, now, at_gateway,
                            gw_done, at_remote_gw, arrival};
        m.fanoutDsts = dsts.data();
        t->onMessage(m);
    }

    auto handler =
        std::make_shared<std::function<void(Rank)>>(std::move(deliver));
    for (Rank d : dsts) {
        TLI_ASSERT(topo_.clusterOf(d) == dc,
                   "multicast destination outside target cluster");
        lastDelivery_.ref(src, d) = arrival;
        if (partitioned_) {
            sim_.scheduleOnShardAt(dc, arrival,
                                   [handler, d] { (*handler)(d); });
        } else {
            sim_.scheduleAt(arrival, [handler, d] { (*handler)(d); });
        }
    }
}

template <typename HopFn>
Time
Fabric::routeWan(ClusterId sc, ClusterId dc, Time at,
                 std::uint64_t bytes, HopFn &&hop) const
{
    Time t = at;
    params_.wanShape.forEachHop(
        topo_.clusterCount(), sc, dc,
        [&](std::size_t link) { t = hop(link, t, bytes); });
    return t;
}

Time
Fabric::wanTransit(ClusterId sc, ClusterId dc, Time at,
                   std::uint64_t bytes)
{
    return routeWan(sc, dc, at, bytes,
                    [this](std::size_t link, Time t, std::uint64_t n) {
                        return wanLinks_[link].transmit(t, n);
                    });
}

Time
Fabric::probeWanTransit(ClusterId sc, ClusterId dc, Time at,
                        std::uint64_t bytes) const
{
    return routeWan(sc, dc, at, bytes,
                    [this](std::size_t link, Time t, std::uint64_t n) {
                        return wanLinks_[link].probeTransmit(t, n);
                    });
}

const LinkStats &
FabricStats::wanLink(ClusterId a, ClusterId b) const
{
    return wanLinks[wanShape.firstHopIndex(clusters, a, b)].stats;
}

double
FabricStats::maxWanUtilization(Time elapsed) const
{
    if (elapsed <= 0)
        return 0;
    Time busiest = 0;
    for (const WanLinkEntry &link : wanLinks)
        busiest = std::max(busiest, link.stats.busyTime);
    return busiest / elapsed;
}

bool
Fabric::admitWan(Time &at)
{
    const Impairments &imp = params_.impairments;
    if (!imp.active())
        return true;
    if (imp.outageDuration > 0 && imp.down(at)) {
        if (imp.outagePolicy == OutagePolicy::drop) {
            ++outageDrops_;
            return false;
        }
        // Queue at the gateway until the window ends, then compete
        // for the WAN link like any other message.
        at = imp.upAt(at);
    }
    // The loss draw is consumed only for messages that reach an "up"
    // wide area, so the loss stream is independent of outage phasing.
    if (imp.lossRate > 0 && lossRng_.uniform() < imp.lossRate) {
        ++lossDrops_;
        return false;
    }
    return true;
}

Time
Fabric::wanLatencyAdjust()
{
    if (params_.wanJitter <= 0)
        return 0;
    double u = jitterRng_.uniform(-1.0, 1.0);
    return params_.wide.latency * params_.wanJitter * u;
}

Time
Fabric::inOrder(Rank src, Rank dst, Time arrival)
{
    Time &last = lastDelivery_.ref(src, dst);
    if (arrival < last)
        arrival = last;
    last = arrival;
    return arrival;
}

Time
Fabric::partitionLookahead() const
{
    const LinkParams segment =
        params_.wanShape.segmentParams(params_.wide);
    return params_.local.latency + params_.gateway.latency +
           segment.latency + params_.gateway.latency +
           params_.local.latency -
           params_.wide.latency * params_.wanJitter;
}

void
Fabric::enablePartition(int shards)
{
    TLI_ASSERT(shards == topo_.clusterCount(),
               "partition shards must map 1:1 onto clusters");
    TLI_ASSERT(sim_.trace() == nullptr,
               "partitioned fabric cannot be traced");
    partitioned_ = true;
    outbox_.resize(static_cast<std::size_t>(shards));
    intraShard_.resize(static_cast<std::size_t>(shards));
    deliveryShard_.resize(static_cast<std::size_t>(shards));
}

void
Fabric::flushWindow()
{
    // Canonical replay order. The sequential engine charges the
    // shared wide-area resources (WAN links, inbound gateways, the
    // ordering table, the loss/jitter streams) synchronously inside
    // each send event, so the replay must process deferred sends in
    // the sequential engine's execution order of those events: send
    // time first, then the sending event's true global sequence
    // number, then the reserved op index (one event can send more
    // than once). The sequence numbers come from the simulation's
    // window-op resolution, which this method drives: register each
    // delivery op — claiming the op slot the sequential engine would
    // have consumed inside the send event — resolve the window, then
    // replay in the now-exact order.
    flushOrder_.clear();
    for (auto &box : outbox_) {
        for (DeferredWan &d : box)
            flushOrder_.push_back(&d);
    }
    if (flushOrder_.empty())
        return;
    for (DeferredWan *d : flushOrder_) {
        const std::uint32_t ops =
            d->fanout ? static_cast<std::uint32_t>(d->dsts.size())
                      : 1u;
        d->ticket = sim_.registerDeferredOp(d->sendTime, d->senderId,
                                            d->opBase);
        for (std::uint32_t k = 1; k < ops; ++k)
            sim_.registerDeferredOp(d->sendTime, d->senderId,
                                    d->opBase + k);
    }
    sim_.resolveWindowOps();
    for (DeferredWan *d : flushOrder_)
        d->senderSeq = sim_.resolveEventId(d->senderId);
    std::sort(flushOrder_.begin(), flushOrder_.end(),
              [](const DeferredWan *a, const DeferredWan *b) {
                  if (a->sendTime != b->sendTime)
                      return a->sendTime < b->sendTime;
                  if (a->senderSeq != b->senderSeq)
                      return a->senderSeq < b->senderSeq;
                  return a->opBase < b->opBase;
              });
    for (DeferredWan *d : flushOrder_)
        processDeferred(*d);
    for (auto &box : outbox_)
        box.clear();
}

bool
Fabric::pendingWork() const
{
    for (const auto &box : outbox_) {
        if (!box.empty())
            return true;
    }
    return false;
}

void
Fabric::processDeferred(DeferredWan &d)
{
    const ClusterId sc = topo_.clusterOf(d.src);
    const ClusterId dc = d.dc;
    Time wan_at = d.gwDone;
    if (!admitWan(wan_at)) {
        intra_.messages += 1;
        intra_.bytes += d.bytes;
        return;
    }
    Time at_remote_gw = wanTransit(sc, dc, wan_at, d.bytes);
    Time arrival = gatewayIn_[dc].transmit(at_remote_gw, d.bytes);

    intra_.messages += 2;
    intra_.bytes += 2 * d.bytes;
    inter_.messages += 1;
    inter_.bytes += d.bytes;
    wanTransit_ += at_remote_gw - d.gwDone;
    LinkStats &per = interPerCluster_[sc];
    per.messages += 1;
    per.bytes += d.bytes;

    if (!d.fanout) {
        arrival = inOrder(d.src, d.dst, arrival + wanLatencyAdjust());
        // Shards map 1:1 onto clusters, so the destination cluster id
        // is the destination shard. The delivery carries its send time
        // (the instant the sequential engine would have scheduled it)
        // and the resolved op sequence number, so same-time arrivals
        // keep the exact sequential order.
        sim_.stageDeliverAt(dc, arrival, d.sendTime,
                            sim_.deferredOpSeq(d.ticket),
                            std::move(d.deliver));
        return;
    }
    arrival += wanLatencyAdjust();
    for (Rank dst : d.dsts)
        arrival = std::max(arrival, lastDelivery_.get(d.src, dst));
    std::size_t k = 0;
    for (Rank dst : d.dsts) {
        lastDelivery_.ref(d.src, dst) = arrival;
        sim_.stageDeliverAt(
            dc, arrival, d.sendTime, sim_.deferredOpSeq(d.ticket + k),
            [handler = d.fanout, dst] { (*handler)(dst); });
        ++k;
    }
}

FabricStats
Fabric::stats() const
{
    const int clusters = topo_.clusterCount();
    FabricStats s;
    s.wanShape = params_.wanShape;
    s.clusters = clusters;
    s.intra = intra_;
    s.inter = inter_;
    s.interPerCluster = interPerCluster_;
    s.wanTransit = wanTransit_;
    s.wanLossDrops = lossDrops_;
    s.wanOutageDrops = outageDrops_;
    s.orderedPairs = lastDelivery_.activePairs();
    s.orderingBytes = lastDelivery_.memoryBytes();
    s.delivery = delivery_;
    // Merge the per-shard slices of partitioned runs. Integer sums,
    // so the merge is exact and order-independent.
    for (const LinkStats &slice : intraShard_) {
        s.intra.messages += slice.messages;
        s.intra.bytes += slice.bytes;
    }
    for (const DeliveryStats &slice : deliveryShard_) {
        s.delivery.retransmits += slice.retransmits;
        s.delivery.duplicates += slice.duplicates;
        s.delivery.acks += slice.acks;
        s.delivery.duplicateAcks += slice.duplicateAcks;
    }

    s.wanLinks.reserve(wanLinks_.size());
    for (std::size_t i = 0; i < wanLinks_.size(); ++i) {
        const WanShape::LinkRole role =
            params_.wanShape.linkRole(clusters, i);
        WanLinkEntry e;
        e.a = role.a;
        e.b = role.b;
        e.kind = role.kind;
        e.stats = wanLinks_[i].stats();
        s.wanLinks.push_back(e);
    }

    s.nics.reserve(nics_.size());
    for (const Link &nic : nics_)
        s.nics.push_back(nic.stats());
    s.gatewayOut.reserve(gatewayOut_.size());
    s.gatewayIn.reserve(gatewayIn_.size());
    for (int c = 0; c < clusters; ++c) {
        s.gatewayOut.push_back(gatewayOut_[c].stats());
        s.gatewayIn.push_back(gatewayIn_[c].stats());
    }
    return s;
}

void
Fabric::resetStats()
{
    intra_ = LinkStats{};
    inter_ = LinkStats{};
    for (auto &s : interPerCluster_)
        s = LinkStats{};
    wanTransit_ = 0;
    lossDrops_ = 0;
    outageDrops_ = 0;
    delivery_ = DeliveryStats{};
    for (LinkStats &slice : intraShard_)
        slice = LinkStats{};
    for (DeliveryStats &slice : deliveryShard_)
        slice = DeliveryStats{};
    for (Link &l : nics_)
        l.resetStats();
    for (Link &l : wanLinks_)
        l.resetStats();
    for (Link &l : gatewayOut_)
        l.resetStats();
    for (Link &l : gatewayIn_)
        l.resetStats();
    if (auto *t = sim_.trace())
        t->onMeasurementStart(sim_.now());
}

} // namespace tli::net
