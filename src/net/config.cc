#include "net/config.h"

namespace tli::net {

LinkParams
Profile::myrinetLink()
{
    LinkParams p;
    p.latency = microseconds(15);
    p.bandwidth = megabytesPerSec(50);
    p.perMessageCost = microseconds(5);
    return p;
}

LinkParams
Profile::wideAreaLink(double mbyte_per_sec, double latency_ms)
{
    LinkParams p;
    p.latency = milliseconds(latency_ms);
    p.bandwidth = megabytesPerSec(mbyte_per_sec);
    p.perMessageCost = wideAreaPerMessageCost;
    return p;
}

LinkParams
Profile::gatewayLink()
{
    LinkParams p;
    p.latency = 0;
    p.bandwidth = megabytesPerSec(14);
    p.perMessageCost = microseconds(100);
    return p;
}

Profile
Profile::das(double wan_mbyte_per_sec, double wan_latency_ms)
{
    FabricParams p;
    p.local = myrinetLink();
    p.wide = wideAreaLink(wan_mbyte_per_sec, wan_latency_ms);
    p.gateway = gatewayLink();
    return Profile(p);
}

Profile
Profile::allMyrinet()
{
    FabricParams p;
    p.local = myrinetLink();
    p.wide = myrinetLink();
    return Profile(p);
}

Profile
Profile::withImpairments(const Impairments &impairments) const
{
    FabricParams p = params_;
    p.impairments = impairments;
    return Profile(p);
}

Profile
Profile::withJitter(double fraction, std::uint64_t seed) const
{
    FabricParams p = params_;
    p.wanJitter = fraction;
    p.jitterSeed = seed;
    return Profile(p);
}

Profile
Profile::withTopology(const WanShape &shape) const
{
    FabricParams p = params_;
    p.wanShape = shape;
    return Profile(p);
}

const std::vector<double> &
figureBandwidthsMBs()
{
    static const std::vector<double> grid = {6.3, 2.6, 0.95, 0.3,
                                             0.1, 0.03};
    return grid;
}

const std::vector<double> &
figureLatenciesMs()
{
    static const std::vector<double> grid = {0.5, 1.3, 3.3, 10,
                                             30,  100, 300};
    return grid;
}

} // namespace tli::net
