/**
 * @file
 * The two-layer cluster-of-clusters topology: C clusters of P compute
 * nodes each, every cluster fronted by a dedicated gateway, gateways
 * fully connected by wide-area links (the DAS layout).
 */

#ifndef TWOLAYER_NET_TOPOLOGY_H_
#define TWOLAYER_NET_TOPOLOGY_H_

#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace tli::net {

/**
 * Static description of the two-layer machine. Ranks 0..P*C-1 are
 * compute processes, assigned block-wise: rank r lives in cluster
 * r / procsPerCluster. Gateways are dedicated machines and carry no
 * rank.
 */
class Topology
{
  public:
    Topology(int clusters, int procs_per_cluster)
        : clusters_(clusters), procsPerCluster_(procs_per_cluster)
    {
        TLI_ASSERT(clusters >= 1 && procs_per_cluster >= 1,
                   "bad topology ", clusters, "x", procs_per_cluster);
    }

    int clusterCount() const { return clusters_; }
    int procsPerCluster() const { return procsPerCluster_; }
    int totalRanks() const { return clusters_ * procsPerCluster_; }

    ClusterId
    clusterOf(Rank r) const
    {
        TLI_ASSERT(r >= 0 && r < totalRanks(), "rank out of range: ", r);
        return r / procsPerCluster_;
    }

    bool
    sameCluster(Rank a, Rank b) const
    {
        return clusterOf(a) == clusterOf(b);
    }

    /** Lowest rank in @p c; conventionally the cluster coordinator. */
    Rank
    firstRankIn(ClusterId c) const
    {
        TLI_ASSERT(c >= 0 && c < clusters_, "cluster out of range: ", c);
        return c * procsPerCluster_;
    }

    /** Index of @p r within its own cluster (0-based). */
    int
    indexInCluster(Rank r) const
    {
        return r % procsPerCluster_;
    }

    std::vector<Rank>
    ranksInCluster(ClusterId c) const
    {
        std::vector<Rank> out;
        out.reserve(procsPerCluster_);
        for (int i = 0; i < procsPerCluster_; ++i)
            out.push_back(firstRankIn(c) + i);
        return out;
    }

    /**
     * The member of @p cluster designated as local coordinator for the
     * remote rank @p peer. Spreading coordinators round-robin over the
     * cluster (as the Water optimization does) balances the caching and
     * reduction load.
     */
    Rank
    coordinatorFor(ClusterId cluster, Rank peer) const
    {
        return firstRankIn(cluster) + (peer % procsPerCluster_);
    }

  private:
    int clusters_;
    int procsPerCluster_;
};

} // namespace tli::net

#endif // TWOLAYER_NET_TOPOLOGY_H_
