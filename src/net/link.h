/**
 * @file
 * A serializing network link with latency, bandwidth, and per-message
 * cost — the unit the NUMA-gap study varies.
 */

#ifndef TWOLAYER_NET_LINK_H_
#define TWOLAYER_NET_LINK_H_

#include <cstdint>

#include "sim/logging.h"
#include "sim/types.h"

namespace tli::net {

/**
 * Link timing parameters (LogGP-flavoured).
 *
 * A message of size S injected at time t on an idle link is delivered at
 *   t + perMessageCost + S / bandwidth + latency.
 * The (perMessageCost + S/bandwidth) term occupies the link, so
 * back-to-back messages serialize; the latency term is pipelined
 * propagation and does not occupy the link.
 */
struct LinkParams
{
    /** One-way propagation delay in seconds. */
    Time latency = 0;
    /** Sustained bandwidth in bytes per second. */
    double bandwidth = 1e9;
    /** Fixed occupancy per message (protocol overhead), seconds. */
    Time perMessageCost = 0;
};

/** Cumulative usage counters for one link or one class of links. */
struct LinkStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /** Total serialization (occupancy) time, seconds. */
    Time busyTime = 0;

    void
    operator+=(const LinkStats &other)
    {
        messages += other.messages;
        bytes += other.bytes;
        busyTime += other.busyTime;
    }
};

/**
 * A single serializing link. Not a process: transmit() advances the
 * link's busy horizon and returns the delivery time; the caller
 * schedules the delivery event.
 */
class Link
{
  public:
    explicit Link(const LinkParams &params) : params_(params)
    {
        TLI_ASSERT(params.bandwidth > 0, "bandwidth must be positive");
        TLI_ASSERT(params.latency >= 0 && params.perMessageCost >= 0,
                   "negative link timing");
    }

    /**
     * Inject a message of @p bytes at time @p now.
     * @return the time at which the message is fully delivered at the
     *         far end of this link.
     */
    Time
    transmit(Time now, std::uint64_t bytes)
    {
        Time start = now > busyUntil_ ? now : busyUntil_;
        Time occupancy = occupancyOf(bytes);
        busyUntil_ = start + occupancy;
        stats_.messages += 1;
        stats_.bytes += bytes;
        stats_.busyTime += occupancy;
        return busyUntil_ + params_.latency;
    }

    /**
     * Delivery time a message of @p bytes injected at @p now would
     * have, without occupying the link or touching the counters. Uses
     * the same serialization math as transmit(), so probe and send
     * agree exactly on an idle link.
     */
    Time
    probeTransmit(Time now, std::uint64_t bytes) const
    {
        Time start = now > busyUntil_ ? now : busyUntil_;
        return start + occupancyOf(bytes) + params_.latency;
    }

    /** Earliest time a new message could begin serializing. */
    Time busyUntil() const { return busyUntil_; }

    const LinkParams &params() const { return params_; }
    const LinkStats &stats() const { return stats_; }

    /** Zero the usage counters; the busy horizon is untouched. */
    void resetStats() { stats_ = LinkStats{}; }

  private:
    Time
    occupancyOf(std::uint64_t bytes) const
    {
        return params_.perMessageCost +
               static_cast<double>(bytes) / params_.bandwidth;
    }

    LinkParams params_;
    Time busyUntil_ = 0;
    LinkStats stats_;
};

} // namespace tli::net

#endif // TWOLAYER_NET_LINK_H_
