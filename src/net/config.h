/**
 * @file
 * Calibrated parameter presets for the DAS-style testbed the paper
 * emulates, and the bandwidth/latency sweep grids of its evaluation.
 */

#ifndef TWOLAYER_NET_CONFIG_H_
#define TWOLAYER_NET_CONFIG_H_

#include <vector>

#include "net/fabric.h"
#include "sim/types.h"

namespace tli::net {

/**
 * Intra-cluster Myrinet, calibrated to the paper: 20 us application
 * level one-way latency, 50 MByte/s application-level bandwidth. We
 * split the 20 us into 5 us of per-message host overhead (occupies the
 * NIC) and 15 us of pipelined latency.
 */
LinkParams myrinetParams();

/**
 * A wide-area ATM/TCP link with the given application-level bandwidth
 * (MByte/s) and one-way latency (milliseconds). The TCP protocol stack
 * in the gateways adds a fixed per-message occupancy.
 */
LinkParams wideAreaParams(double mbyte_per_sec, double latency_ms);

/** Per-message TCP/gateway overhead on wide-area links, seconds. */
constexpr Time wideAreaPerMessageCost = 0.20e-3;

/**
 * Gateway TCP processing capacity on the DAS (software TCP on a
 * 200 MHz Pentium Pro over OC3 ATM: ~14 MByte/s application level).
 */
LinkParams gatewayParams();

/** A two-layer fabric parameter set with the default local layer. */
FabricParams dasParams(double wan_mbyte_per_sec, double wan_latency_ms);

/**
 * Fabric parameters for a single all-Myrinet cluster (the paper's
 * upper-bound configuration). The wide layer is never used but is set
 * to Myrinet speeds for safety.
 */
FabricParams allMyrinetParams();

/** The paper's Fig. 3 bandwidth grid, MByte/s (fast to slow). */
const std::vector<double> &figureBandwidthsMBs();

/** The paper's Fig. 3 one-way latency grid, milliseconds. */
const std::vector<double> &figureLatenciesMs();

} // namespace tli::net

#endif // TWOLAYER_NET_CONFIG_H_
