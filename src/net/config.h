/**
 * @file
 * Network profiles: calibrated parameter presets for the DAS-style
 * testbed the paper emulates, expressed as a single composable value
 * type, plus the bandwidth/latency sweep grids of its evaluation.
 */

#ifndef TWOLAYER_NET_CONFIG_H_
#define TWOLAYER_NET_CONFIG_H_

#include <vector>

#include "net/fabric.h"
#include "net/impairments.h"
#include "sim/types.h"

namespace tli::net {

/** Per-message TCP/gateway overhead on wide-area links, seconds. */
constexpr Time wideAreaPerMessageCost = 0.20e-3;

/**
 * A complete, named two-layer network configuration that yields the
 * FabricParams a Fabric is built from. Profiles are immutable values:
 * the factories return the calibrated presets, and the with*()
 * derivations return a copy with one aspect replaced, so a fully
 * impaired star-topology DAS reads as one expression:
 *
 *   Profile::das(6.0, 0.5)
 *       .withTopology(WanShape::star())
 *       .withImpairments({.lossRate = 0.01})
 *       .params()
 */
class Profile
{
  public:
    /**
     * The two-layer DAS: Myrinet inside clusters, a wide-area ATM/TCP
     * link of the given application-level bandwidth (MByte/s) and
     * one-way latency (milliseconds) between them, and the calibrated
     * finite-capacity gateways.
     */
    static Profile das(double wan_mbyte_per_sec, double wan_latency_ms);

    /**
     * A machine with every link at Myrinet speed (the paper's
     * single-cluster upper bound). The wide layer is never meant to
     * matter but is set to Myrinet speeds for safety.
     */
    static Profile allMyrinet();

    /** This profile with the given wide-area impairments attached. */
    Profile withImpairments(const Impairments &impairments) const;

    /**
     * This profile with wide-area latency jitter: each WAN message's
     * propagation latency is drawn uniformly from
     * [latency*(1-fraction), latency*(1+fraction)].
     */
    Profile withJitter(double fraction, std::uint64_t seed) const;

    /** This profile with the given wide-area shape. */
    Profile withTopology(const WanShape &shape) const;

    /** The fabric parameters this profile describes. */
    const FabricParams &params() const { return params_; }

    /**
     * Intra-cluster Myrinet, calibrated to the paper: 20 us
     * application-level one-way latency, 50 MByte/s application-level
     * bandwidth. The 20 us split into 5 us of per-message host
     * overhead (occupies the NIC) and 15 us of pipelined latency.
     */
    static LinkParams myrinetLink();

    /**
     * A wide-area ATM/TCP link with the given application-level
     * bandwidth (MByte/s) and one-way latency (milliseconds). The TCP
     * protocol stack in the gateways adds a fixed per-message
     * occupancy.
     */
    static LinkParams wideAreaLink(double mbyte_per_sec,
                                   double latency_ms);

    /**
     * Gateway TCP processing capacity on the DAS (software TCP on a
     * 200 MHz Pentium Pro over OC3 ATM: ~14 MByte/s application
     * level).
     */
    static LinkParams gatewayLink();

  private:
    explicit Profile(FabricParams params) : params_(params) {}

    FabricParams params_;
};

/** The paper's Fig. 3 bandwidth grid, MByte/s (fast to slow). */
const std::vector<double> &figureBandwidthsMBs();

/** The paper's Fig. 3 one-way latency grid, milliseconds. */
const std::vector<double> &figureLatenciesMs();

} // namespace tli::net

#endif // TWOLAYER_NET_CONFIG_H_
