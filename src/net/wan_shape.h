/**
 * @file
 * The wide-area network shape as a first-class value: which physical
 * links exist between the cluster gateways, how a transfer routes
 * over them, and what each link is called. Owning all of that in one
 * type (instead of enum switches scattered over routing, stats
 * labeling, flag parsing and the result cache) means a new shape is
 * one class to extend, not five switches to keep in lockstep.
 */

#ifndef TWOLAYER_NET_WAN_SHAPE_H_
#define TWOLAYER_NET_WAN_SHAPE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace tli::net {

/** Most dimensions a torus/mesh can have (labels are static). */
constexpr int kMaxWanDims = 8;

/**
 * Shape of the wide-area network connecting the cluster gateways.
 * The paper's DAS is fully connected; §5.1 predicts its
 * bisection-bandwidth effect "will diminish, and disappear in star,
 * ring, or bus topologies". The k-ary n-cube torus and mesh shapes
 * (APENet / PACS-CS-style direct networks) extend that sweep to
 * multi-dimensional diameters the paper could not measure.
 *
 * A WanShape is a plain value: a kind plus, for torus/mesh, the
 * per-dimension extents whose product must equal the cluster count.
 * It owns link enumeration (linkCount / linkRole), multi-hop path
 * computation (forEachHop / path / firstHopIndex), the canonical
 * name/parse round trip (name / spec / parseWanShape), and parameter
 * validation (validateFor) — the Fabric, stats, flags, reports and
 * result cache are shape-agnostic consumers.
 */
class WanShape
{
  public:
    enum class Kind
    {
        /** A dedicated link per ordered cluster pair (the DAS). */
        fullyConnected,
        /** One up/down link per cluster through a central switch. */
        star,
        /** Unidirectional links around a cycle; shorter arc taken. */
        ring,
        /** k-ary n-cube with wraparound; dimension-ordered routing,
         *  shorter arc per dimension. */
        torus,
        /** k-ary n-cube without wraparound; dimension-ordered,
         *  monotone per dimension. */
        mesh,
    };

    /** Fully connected — the DAS default. */
    WanShape() = default;

    /**
     * Any kind with explicit dims. Construction never fails: an
     * inconsistent combination (dims on a ring, dims whose product
     * is not the cluster count) is reported by validateFor(), so the
     * Scenario/flag layers can surface one readable message instead
     * of asserting here.
     */
    explicit WanShape(Kind kind, std::vector<int> dims = {})
        : kind_(kind), dims_(std::move(dims))
    {}

    static WanShape fullyConnected() { return WanShape(); }
    static WanShape star() { return WanShape(Kind::star); }
    static WanShape ring() { return WanShape(Kind::ring); }
    static WanShape
    torus(std::vector<int> dims)
    {
        return WanShape(Kind::torus, std::move(dims));
    }
    static WanShape
    mesh(std::vector<int> dims)
    {
        return WanShape(Kind::mesh, std::move(dims));
    }

    Kind kind() const { return kind_; }
    /** Per-dimension extents; empty unless torus/mesh. */
    const std::vector<int> &dims() const { return dims_; }
    /** Whether this kind is parameterized by dims. */
    bool
    dimensional() const
    {
        return kind_ == Kind::torus || kind_ == Kind::mesh;
    }

    /** Canonical kind name: "fully-connected", "star", "ring",
     *  "torus", "mesh". Static storage. */
    const char *name() const;

    /**
     * Canonical full spelling, including dims when present:
     * "torus-4x4x2". parseWanShape(spec()) round-trips every shape;
     * for the three dimensionless kinds spec() == name().
     */
    std::string spec() const;

    /**
     * Consistency of this shape on a machine of @p clusters clusters.
     * @return "" when valid, else one readable problem description
     *         (the spelling the flags, JSON reports and
     *         Scenario::validate share).
     */
    std::string validateFor(int clusters) const;

    /** Physical wide-area links this shape allocates. */
    std::size_t linkCount(int clusters) const;

    /**
     * Per-segment link parameters derived from the wide-area link
     * description. The star's two access segments split the one-way
     * latency and per-message cost; every other shape's hops each
     * carry the full store-and-forward cost.
     */
    LinkParams segmentParams(const LinkParams &wide) const;

    /** Where one link sits in the shape: endpoints and kind label. */
    struct LinkRole
    {
        /** Owning (near) cluster. */
        ClusterId a = invalidCluster;
        /** Far cluster: the pair peer (fully connected) or the
         *  neighbor a torus/mesh hop reaches; invalidCluster for the
         *  single-ended star/ring links and unused mesh edges. */
        ClusterId b = invalidCluster;
        /** Static label: "pair", "up"/"down", "cw"/"ccw", or the
         *  per-dimension "dim<k>+"/"dim<k>-". */
        const char *kind = "";
    };

    /** Role of link @p index under this shape (see the fabric's link
     *  layout contract in linkCount()/firstHopIndex()). */
    LinkRole linkRole(int clusters, std::size_t index) const;

    /**
     * Walk the links a (a -> b) transfer crosses, in route order,
     * calling `fn(linkIndex)` once per store-and-forward segment.
     * Zero-allocation; the Fabric's transmit and probe paths both
     * route through this, so they can never diverge.
     */
    template <typename Fn>
    void
    forEachHop(int clusters, ClusterId a, ClusterId b, Fn &&fn) const
    {
        checkEndpoints(clusters, a, b);
        switch (kind_) {
          case Kind::fullyConnected:
            fn(static_cast<std::size_t>(a) * clusters + b);
            return;
          case Kind::star:
            // Up through the source's access link, down through the
            // destination's.
            fn(static_cast<std::size_t>(a));
            fn(static_cast<std::size_t>(clusters) + b);
            return;
          case Kind::ring: {
            // Shorter arc, store-and-forward per hop: clockwise hop
            // links are [c], counterclockwise ones [clusters + c].
            int cw = (b - a + clusters) % clusters;
            int ccw = (a - b + clusters) % clusters;
            if (cw <= ccw) {
                for (ClusterId c = a; c != b; c = (c + 1) % clusters)
                    fn(static_cast<std::size_t>(c));
            } else {
                for (ClusterId c = a; c != b;
                     c = (c + clusters - 1) % clusters) {
                    fn(static_cast<std::size_t>(clusters) + c);
                }
            }
            return;
          }
          case Kind::torus:
          case Kind::mesh: {
            // Dimension-ordered (e-cube) routing: resolve dimension
            // 0 completely, then 1, ... Torus arcs wrap and take the
            // shorter way (ties positive, matching the ring's
            // clockwise tie-break); mesh movement is monotone.
            const int n = static_cast<int>(dims_.size());
            ClusterId cur = a;
            std::size_t stride = 1;
            for (int k = 0; k < n; ++k) {
                const int d = dims_[k];
                int ca = (cur / static_cast<int>(stride)) % d;
                int cb = (b / static_cast<int>(stride)) % d;
                int up = (cb - ca + d) % d;
                int down = (ca - cb + d) % d;
                bool positive =
                    kind_ == Kind::mesh ? cb > ca : up <= down;
                int steps = positive ? up : down;
                for (int s = 0; s < steps; ++s) {
                    fn(hopLink(clusters, k, positive, cur));
                    cur = neighbor(cur, k, stride, positive);
                }
                stride *= static_cast<std::size_t>(d);
            }
            return;
          }
        }
        TLI_PANIC("unreachable wan shape kind");
    }

    /**
     * Index of the first link a (a -> b) transfer crosses. Shared by
     * the fabric's routing and FabricStats::wanLink, so per-pair
     * stats lookup can never diverge from the links a send occupies.
     */
    std::size_t firstHopIndex(int clusters, ClusterId a,
                              ClusterId b) const;

    /** The full route as ordered link indices (test/analysis form of
     *  forEachHop). */
    std::vector<std::size_t> path(int clusters, ClusterId a,
                                  ClusterId b) const;

    /**
     * Upper bound on any route's store-and-forward hop count: 1 for
     * fully connected, 2 for star, floor(C/2) for ring, and the sum
     * of per-dimension radii for torus (floor(d/2) each) and mesh
     * (d - 1 each).
     */
    int diameter(int clusters) const;

    bool
    operator==(const WanShape &o) const
    {
        return kind_ == o.kind_ && dims_ == o.dims_;
    }
    bool operator!=(const WanShape &o) const { return !(*this == o); }

  private:
    /** Torus/mesh link layout: the dim-@p k link leaving cluster
     *  @p c in the given direction. */
    std::size_t
    hopLink(int clusters, int k, bool positive, ClusterId c) const
    {
        return (2 * static_cast<std::size_t>(k) + (positive ? 0 : 1)) *
                   static_cast<std::size_t>(clusters) +
               static_cast<std::size_t>(c);
    }

    /** The cluster one dim-@p k step from @p c (torus wraps; the
     *  mesh never asks for an out-of-range step). */
    ClusterId
    neighbor(ClusterId c, int k, std::size_t stride,
             bool positive) const
    {
        const int d = dims_[k];
        int coord = (c / static_cast<int>(stride)) % d;
        int next = positive ? coord + 1 : coord - 1;
        if (kind_ == Kind::torus)
            next = (next + d) % d;
        TLI_ASSERT(next >= 0 && next < d, "mesh step out of range");
        return c + (next - coord) * static_cast<int>(stride);
    }

    static void
    checkEndpoints(int clusters, ClusterId a, ClusterId b)
    {
        TLI_ASSERT(a >= 0 && a < clusters && b >= 0 && b < clusters,
                   "wan route cluster out of range: ", a, ", ", b);
        TLI_ASSERT(a != b, "wan route needs distinct clusters, got ",
                   a);
    }

    Kind kind_ = Kind::fullyConnected;
    std::vector<int> dims_;
};

/** Canonical name of a shape kind (same strings as WanShape::name). */
const char *wanShapeKindName(WanShape::Kind kind);

/**
 * Parse a canonical shape spelling: a kind name ("fully-connected",
 * "star", "ring", "torus", "mesh", with "full" accepted as an alias)
 * or a full spec with dims ("torus-4x4x2", "mesh-2x2"). The inverse
 * of WanShape::spec(); the one parser behind the --wan-topology flag
 * and the result cache's stored names.
 * @return std::nullopt if @p text is not a WAN shape.
 */
std::optional<WanShape> parseWanShape(std::string_view text);

/**
 * Parse a dims spelling like "4x4x2" into per-dimension extents.
 * Accepts only positive integers joined by 'x'; range/product checks
 * belong to WanShape::validateFor.
 * @return std::nullopt on malformed input.
 */
std::optional<std::vector<int>> parseWanDims(std::string_view text);

/** Canonical "4x4x2" spelling of @p dims ("" when empty). */
std::string wanDimsSpec(const std::vector<int> &dims);

/**
 * Map a stored link-kind label back to its static literal (the
 * result cache's WanLinkEntry::kind is a non-owning const char*, so
 * loaded entries must point at storage with program lifetime).
 * @return "" for labels no shape emits.
 */
const char *canonicalWanLinkKind(std::string_view name);

} // namespace tli::net

#endif // TWOLAYER_NET_WAN_SHAPE_H_
