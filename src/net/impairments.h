/**
 * @file
 * Wide-area impairment model: seeded per-message loss and scheduled
 * gateway outage windows. The paper's testbed emulates the WAN as
 * fixed delay loops and leaves real-WAN misbehaviour as future work
 * (§7); this is the robustness axis the simulator adds on top.
 */

#ifndef TWOLAYER_NET_IMPAIRMENTS_H_
#define TWOLAYER_NET_IMPAIRMENTS_H_

#include <cmath>
#include <cstdint>

#include "sim/types.h"

namespace tli::net {

/** What a gateway does with traffic offered during an outage. */
enum class OutagePolicy
{
    /** Refuse the message; it is lost (the reliable layer re-sends). */
    drop,
    /** Hold the message at the gateway until the outage ends. */
    queue,
};

/**
 * Impairments applied at the wide-area ingress of the fabric: each
 * inter-cluster message is dropped with probability @c lossRate (drawn
 * from a seeded stream, so runs are reproducible), and during an
 * outage window the WAN refuses traffic entirely. Outages are
 * scheduled deterministically: the first begins at @c outageStart and
 * lasts @c outageDuration; with @c outagePeriod > 0 the window repeats
 * every period. Local links are never impaired.
 */
struct Impairments
{
    /** Per-message drop probability on wide-area crossings, [0, 1). */
    double lossRate = 0.0;
    /** Simulated time the first outage begins, seconds. */
    Time outageStart = 0.0;
    /** Length of each outage window, seconds (0 = no outages). */
    Time outageDuration = 0.0;
    /** Window repetition period, seconds (0 = a single outage). */
    Time outagePeriod = 0.0;
    /** Behaviour of traffic offered while the WAN is down. */
    OutagePolicy outagePolicy = OutagePolicy::drop;
    /** Seed of the loss stream (independent of the jitter stream). */
    std::uint64_t lossSeed = 0x10551;

    /** Whether any impairment is configured at all. The fabric takes
     *  the exact pre-impairment code path when this is false, so a
     *  default-constructed Impairments is bit-identical to none. */
    bool
    active() const
    {
        return lossRate > 0 || outageDuration > 0;
    }

    /** Is the wide area down (inside an outage window) at @p t? */
    bool
    down(Time t) const
    {
        if (outageDuration <= 0 || t < outageStart)
            return false;
        if (outagePeriod <= 0)
            return t < outageStart + outageDuration;
        Time phase = std::fmod(t - outageStart, outagePeriod);
        return phase < outageDuration;
    }

    /** Earliest time at or after @p t the wide area is up again. */
    Time
    upAt(Time t) const
    {
        if (!down(t))
            return t;
        if (outagePeriod <= 0)
            return outageStart + outageDuration;
        Time windows = std::floor((t - outageStart) / outagePeriod);
        return outageStart + windows * outagePeriod + outageDuration;
    }
};

} // namespace tli::net

#endif // TWOLAYER_NET_IMPAIRMENTS_H_
