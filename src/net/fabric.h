/**
 * @file
 * The two-layer interconnect fabric: routes messages between ranks,
 * serializing on per-node NICs, per-cluster-pair wide-area links and
 * per-gateway egress links, and accounts traffic per layer.
 */

#ifndef TWOLAYER_NET_FABRIC_H_
#define TWOLAYER_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/impairments.h"
#include "net/link.h"
#include "net/pair_map.h"
#include "net/topology.h"
#include "net/wan_shape.h"
#include "sim/partition.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "sim/types.h"

namespace tli::net {

/** Timing parameters for both layers of the interconnect. */
struct FabricParams
{
    /** Intra-cluster (system-area, "Myrinet") link parameters. */
    LinkParams local;
    /** Inter-cluster (wide-area, "ATM") link parameters. */
    LinkParams wide;
    /**
     * Gateway machine processing capacity: every byte entering or
     * leaving a cluster over the wide area passes through the
     * dedicated gateway's protocol stack (software TCP on the DAS).
     * Defaults to an effectively unbounded gateway; Profile::das()
     * sets a realistic finite value.
     */
    LinkParams gateway{0.0, 1e12, 0.0};

    /** Wide-area shape; see net::WanShape. */
    WanShape wanShape;

    /**
     * Wide-area latency variability (the paper's §1 future-work item:
     * "the impact of variations in latency and bandwidth, which often
     * occur on wide area links"): each wide-area message's propagation
     * latency is drawn uniformly from
     * [latency*(1-jitter), latency*(1+jitter)]. Per-(source,
     * destination) delivery order is still preserved, as TCP does.
     */
    double wanJitter = 0.0;
    /** Seed of the jitter stream (runs stay reproducible). */
    std::uint64_t jitterSeed = 0x1234;

    /**
     * Wide-area impairments (message loss, gateway outage windows).
     * Inactive by default: a fabric with no impairments takes exactly
     * the pre-impairment code path, consumes no random draws for
     * them, and is bit-identical to one built before they existed.
     */
    Impairments impairments;
};

/**
 * Counters of the reliable-delivery protocol layered above the fabric
 * (see panda::Reliable). The fabric owns the storage — it is the
 * single stats surface — and the messaging layer increments the
 * counters through Fabric::deliveryCounters(); resetStats() zeroes
 * them together with the traffic counters.
 */
struct DeliveryStats
{
    /** Data frames re-sent after a timeout. */
    std::uint64_t retransmits = 0;
    /** Data frames suppressed at the receiver as already seen. */
    std::uint64_t duplicates = 0;
    /** Acknowledgements delivered for still-pending frames. */
    std::uint64_t acks = 0;
    /** Acknowledgements for frames that were already acknowledged. */
    std::uint64_t duplicateAcks = 0;
};

/**
 * One physical wide-area link's usage, labeled with its place in the
 * configured WAN shape (WanShape::linkRole): a dedicated ("pair")
 * link of the fully connected mesh, a star access link ("up"/"down"),
 * a ring hop ("cw"/"ccw"), or a torus/mesh per-dimension hop
 * ("dim<k>+"/"dim<k>-"). @c b is the far cluster for pair and
 * torus/mesh hop links, invalidCluster for the single-ended star/ring
 * links and unused mesh wraparound edges.
 */
struct WanLinkEntry
{
    ClusterId a = invalidCluster;
    ClusterId b = invalidCluster;
    const char *kind = "";
    LinkStats stats;
};

/**
 * One consistent snapshot of every fabric counter, taken by
 * Fabric::stats(). This is the single stats surface: layer aggregates,
 * per-cluster outbound traffic, per-WAN-link, per-NIC, and per-gateway
 * usage, all covering the interval since the last resetStats().
 */
struct FabricStats
{
    WanShape wanShape;
    int clusters = 0;

    /** Local-layer aggregate (NIC + gateway-local hops). */
    LinkStats intra;
    /** Wide-area aggregate. */
    LinkStats inter;
    /** Outbound wide-area traffic per source cluster. */
    std::vector<LinkStats> interPerCluster;
    /**
     * Total gateway-to-gateway wide-area transit time, summed over
     * messages (queueing + serialization + propagation, before
     * jitter). The per-message "wan" trace spans sum to exactly this.
     */
    Time wanTransit = 0;

    /**
     * Every wide-area link, indexed as the fabric allocates them
     * (fully connected: [a*C + b] incl. unused diagonals; star/ring:
     * up/cw [0, C) then down/ccw [C, 2C); torus/mesh: the dim-k
     * +/- links of cluster c at [(2k)*C + c] / [(2k+1)*C + c]). Use
     * wanLink() for route-aware lookup.
     */
    std::vector<WanLinkEntry> wanLinks;
    /** Messages lost to random wide-area drops (Impairments::lossRate). */
    std::uint64_t wanLossDrops = 0;
    /** Messages refused because the WAN was inside an outage window. */
    std::uint64_t wanOutageDrops = 0;
    /** Rank pairs that exchanged at least one wide-area message — the
     *  population of the sparse ordering table, whose memory is
     *  O(this) rather than O(ranks^2). */
    std::uint64_t orderedPairs = 0;
    /** Bytes held by the sparse ordering table. */
    std::uint64_t orderingBytes = 0;
    /** Reliable-delivery protocol counters (zero when no reliability
     *  layer runs above this fabric). */
    DeliveryStats delivery;
    /** Outbound NIC usage per rank. */
    std::vector<LinkStats> nics;
    /** Per-cluster gateway protocol usage, by direction. */
    std::vector<LinkStats> gatewayOut;
    std::vector<LinkStats> gatewayIn;

    /**
     * Usage of the wide-area link a transfer from cluster @p a to
     * cluster @p b serializes on first. Shape-aware through
     * WanShape::firstHopIndex: fully connected reports the dedicated
     * (a, b) link, star the up-link of @p a, ring the first hop of
     * the shorter arc, torus/mesh the first dimension-ordered hop.
     * Asserts that @p a and @p b are distinct, valid clusters.
     */
    const LinkStats &wanLink(ClusterId a, ClusterId b) const;

    /**
     * Occupancy of the busiest wide-area link as a fraction of
     * @p elapsed seconds — 1.0 means some link of the configured
     * shape was saturated for the whole interval. Shape-agnostic: it
     * scans every link the shape enumerates.
     */
    double maxWanUtilization(Time elapsed) const;
};

/**
 * The routed two-layer fabric.
 *
 * An intra-cluster message serializes on the sender's NIC and arrives
 * one local latency later. An inter-cluster message serializes on the
 * sender's NIC (hop to the local gateway), then on the wide-area link
 * for the (source, destination) cluster pair, then on the destination
 * gateway's egress link for the final local hop. Because wide-area
 * links are a per-cluster-pair resource, concurrent senders in one
 * cluster contend exactly as the paper describes (3 x 6 MByte/s links
 * out of each of 4 clusters => 18 MByte/s per cluster cap).
 *
 * Partitioned mode (enablePartition) makes the fabric the simulation's
 * PartitionStage: clusters map 1:1 onto shards, so every NIC and the
 * outbound gateway stay owned by exactly one shard and keep their
 * sequential code path, while the shared wide-area half of a
 * cross-cluster send (WAN links, impairments, jitter, ordering table,
 * inbound gateway) is deferred into a per-shard outbox and replayed in
 * one canonical order between windows — single-threaded, so the RNG
 * streams and PairTimeMap ordering semantics are exactly those of the
 * sequential engine.
 */
class Fabric : public sim::PartitionStage
{
  public:
    Fabric(sim::Simulation &sim, const Topology &topo,
           const FabricParams &params);

    /**
     * Send @p bytes from @p src to @p dst; @p deliver fires at the
     * arrival time. Sending to self delivers after one local
     * per-message cost with no latency.
     */
    void send(Rank src, Rank dst, std::uint64_t bytes,
              sim::EventFn deliver);

    /** Arrival time a message would have if injected now (no send). */
    Time probeArrival(Rank src, Rank dst, std::uint64_t bytes) const;

    /**
     * Hardware multicast inside the sender's cluster ("multicast
     * primitives inside clusters"): one NIC serialization delivers to
     * every rank in @p dsts, all of which must live in src's cluster.
     */
    void multicastLocal(Rank src, const std::vector<Rank> &dsts,
                        std::uint64_t bytes,
                        std::function<void(Rank)> deliver);

    /**
     * Point-to-point transfer to a remote cluster's gateway followed by
     * a gateway-egress multicast to @p dsts (all in cluster @p dc).
     * This is the wide-area half of the paper's multicast tree.
     */
    void multicastToCluster(Rank src, ClusterId dc,
                            const std::vector<Rank> &dsts,
                            std::uint64_t bytes,
                            std::function<void(Rank)> deliver);

    const Topology &topology() const { return topo_; }
    const FabricParams &params() const { return params_; }

    /**
     * Mutable reliable-delivery counters for the messaging layer
     * running above this fabric (panda::Reliable). Kept here so
     * stats() snapshots traffic and protocol behaviour together and
     * resetStats() clears both at measurement start. During parallel
     * windows this is the calling shard's private slice; stats()
     * merges the slices.
     */
    DeliveryStats &
    deliveryCounters()
    {
        if (partitioned_ && sim_.inParallelPhase())
            return deliveryShard_[sim_.currentShard()];
        return delivery_;
    }

    /**
     * A positive lower bound on the delay between a cross-cluster
     * send and its delivery: NIC latency + both gateway latencies +
     * one WAN segment latency + the final local hop, minus the
     * largest possible negative jitter. Serialization, per-message
     * costs, multi-hop routes, ordering clamps and outage queueing
     * only add to it, so it is a safe conservative lookahead.
     */
    Time partitionLookahead() const;

    /**
     * Become the partition stage of a partitioned simulation with one
     * shard per cluster (@p shards must equal the cluster count).
     * Call before any traffic flows and never on a traced fabric.
     */
    void enablePartition(int shards);

    /** Replay all deferred wide-area sends (sim::PartitionStage). */
    void flushWindow() override;

    /** Whether any deferred send awaits replay (sim::PartitionStage). */
    bool pendingWork() const override;

    /**
     * One consistent snapshot of every fabric counter (layer
     * aggregates, per-link, per-NIC, per-gateway), covering the
     * interval since the last resetStats().
     */
    FabricStats stats() const;

    /**
     * Reset every traffic counter — aggregates and per-link alike —
     * so the next stats() snapshot covers only the measured phase
     * (the paper excludes startup the same way). Notifies the trace
     * sink, so aggregating sinks stay in lockstep with the counters.
     */
    void resetStats();

  private:
    /**
     * Walk the wide-area links a (sc -> dc) transfer crosses under
     * the configured shape (WanShape::forEachHop), in route order,
     * calling `hop(linkIndex, at, bytes) -> Time` per segment with
     * the previous segment's delivery time. Shared by the mutating
     * wanTransit() and the const probe/stats paths, so routing can
     * never diverge between them.
     */
    template <typename HopFn>
    Time routeWan(ClusterId sc, ClusterId dc, Time at,
                  std::uint64_t bytes, HopFn &&hop) const;

    /** Sampled latency perturbation for one wide-area message. */
    Time wanLatencyAdjust();

    /**
     * Apply the configured impairments to a wide-area injection at
     * time @p at (the moment the message clears the source gateway).
     * Returns false if the message is lost — the caller must not
     * deliver it — and otherwise leaves in @p at the (possibly
     * deferred, under OutagePolicy::queue) WAN injection time.
     */
    bool admitWan(Time &at);

    /** Clamp @p arrival so (src, dst) delivery stays in send order. */
    Time inOrder(Rank src, Rank dst, Time arrival);

    /**
     * The deferred wide-area half of one cross-cluster transfer: the
     * source shard already serialized on its NIC and outbound gateway
     * (shard-owned state, so their busy horizons evolve in shard
     * execution order); everything from WAN admission on is replayed
     * by flushWindow() in canonical order. A null @c fanout means a
     * unicast carrying @c deliver; otherwise a cluster multicast
     * fanning out to @c dsts through the shared handler.
     */
    struct DeferredWan
    {
        Rank src = 0;
        Rank dst = 0;
        ClusterId dc = invalidCluster;
        std::uint64_t bytes = 0;
        Time sendTime = 0;
        /** Identity of the sending event and the scheduling-op slots
         *  reserved for the deliveries (Simulation::reserveOps) — the
         *  replay-order key and the source of each delivery's true
         *  global sequence number (see flushWindow). */
        std::uint64_t senderId = 0;
        std::uint32_t opBase = 0;
        /** Filled during the flush: the sender's resolved sequence
         *  number and the first delivery op's ticket. */
        std::uint64_t senderSeq = 0;
        std::size_t ticket = 0;
        Time gwDone = 0;
        sim::EventFn deliver;
        std::shared_ptr<std::function<void(Rank)>> fanout;
        std::vector<Rank> dsts;
    };

    /** The calling context's intra-layer counter slice. */
    LinkStats &
    intraCounters()
    {
        if (partitioned_ && sim_.inParallelPhase())
            return intraShard_[sim_.currentShard()];
        return intra_;
    }

    void processDeferred(DeferredWan &d);

    sim::Simulation &sim_;
    Topology topo_;
    FabricParams params_;
    sim::Random jitterRng_;
    /** Loss stream; drawn once per WAN injection iff lossRate > 0,
     *  and independent of jitterRng_ so enabling loss leaves the
     *  jitter draws untouched. */
    sim::Random lossRng_;
    /**
     * Last delivery time per (src, dst) rank pair (TCP ordering).
     * Sparse: memory is O(pairs that actually communicate), so a
     * 100k-rank fabric costs nothing until traffic flows — the flat
     * R*R vector it replaced was 80 GB at that scale. Lookup stays
     * O(1) (open addressing), absent pairs read as the flat table's
     * zero-fill.
     */
    PairTimeMap lastDelivery_;

    /**
     * Carry one message across the wide area from cluster @p sc to
     * cluster @p dc, starting no earlier than @p at; serializes on
     * the links the configured topology routes it over and returns
     * the time it reaches the destination gateway.
     */
    Time wanTransit(ClusterId sc, ClusterId dc, Time at,
                    std::uint64_t bytes);

    /** Non-mutating wanTransit(): same routing, no link occupancy. */
    Time probeWanTransit(ClusterId sc, ClusterId dc, Time at,
                         std::uint64_t bytes) const;

    /** One outbound NIC link per rank (local layer). */
    std::vector<Link> nics_;
    /**
     * Wide-area links, laid out as the configured WanShape
     * enumerates them (linkCount/linkRole): fully connected directed
     * pairs [src*C + dst]; star up [0, C) / down [C, 2C); ring cw
     * [0, C) / ccw [C, 2C); torus/mesh per-dimension directed hops.
     */
    std::vector<Link> wanLinks_;
    /** Per-cluster gateway protocol processing, outbound direction. */
    std::vector<Link> gatewayOut_;
    /** Per-cluster gateway protocol processing, inbound direction
     *  (also covers the final local hop to the destination). */
    std::vector<Link> gatewayIn_;

    /** Running layer aggregates; stats() merges in per-link counters. */
    LinkStats intra_;
    LinkStats inter_;
    std::vector<LinkStats> interPerCluster_;
    Time wanTransit_ = 0;
    std::uint64_t lossDrops_ = 0;
    std::uint64_t outageDrops_ = 0;
    DeliveryStats delivery_;
    /** Next MessageTrace id (advanced only while a sink is attached). */
    std::uint64_t traceSeq_ = 0;

    // Partitioned-mode state (empty and never touched otherwise).
    bool partitioned_ = false;
    /** Deferred cross-cluster sends, appended by the owning shard. */
    std::vector<std::vector<DeferredWan>> outbox_;
    /** Per-shard slices of the intra-layer aggregate. */
    std::vector<LinkStats> intraShard_;
    /** Per-shard slices of the reliable-delivery counters. */
    std::vector<DeliveryStats> deliveryShard_;
    /** Flush scratch: deferred sends in canonical replay order. */
    std::vector<DeferredWan *> flushOrder_;
};

} // namespace tli::net

#endif // TWOLAYER_NET_FABRIC_H_
