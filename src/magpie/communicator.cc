#include "magpie/communicator.h"

#include <utility>

#include "magpie/collectives_flat.h"
#include "magpie/collectives_magpie.h"

namespace tli::magpie {

const char *
algorithmName(Algorithm a)
{
    switch (a) {
      case Algorithm::flat:
        return "flat";
      case Algorithm::magpie:
        return "magpie";
    }
    return "?";
}

Communicator::Communicator(panda::Panda &panda, Algorithm algorithm)
    : panda_(panda), algorithm_(algorithm)
{
    switch (algorithm) {
      case Algorithm::flat:
        impl_ = std::make_unique<FlatCollectives>(panda);
        break;
      case Algorithm::magpie:
        impl_ = std::make_unique<MagpieCollectives>(panda);
        break;
    }
    seq_.assign(panda.topology().totalRanks(), 0);
}

Communicator::~Communicator() = default;

int
Communicator::size() const
{
    return panda_.topology().totalRanks();
}

sim::Task<void>
Communicator::barrier(Rank self)
{
    co_await impl_->barrier(self, nextSeq(self));
}

sim::Task<Vec>
Communicator::bcast(Rank self, Rank root, Vec data)
{
    co_return co_await impl_->bcast(self, nextSeq(self), root,
                                    std::move(data));
}

sim::Task<Vec>
Communicator::reduce(Rank self, Rank root, Vec contrib, ReduceOp op)
{
    co_return co_await impl_->reduce(self, nextSeq(self), root,
                                     std::move(contrib), op);
}

sim::Task<Vec>
Communicator::allreduce(Rank self, Vec contrib, ReduceOp op)
{
    co_return co_await impl_->allreduce(self, nextSeq(self),
                                        std::move(contrib), op);
}

sim::Task<Table>
Communicator::gather(Rank self, Rank root, Vec contrib)
{
    co_return co_await impl_->gather(self, nextSeq(self), root,
                                     std::move(contrib));
}

sim::Task<Table>
Communicator::gatherv(Rank self, Rank root, Vec contrib)
{
    co_return co_await impl_->gather(self, nextSeq(self), root,
                                     std::move(contrib));
}

sim::Task<Vec>
Communicator::scatter(Rank self, Rank root, Table chunks)
{
    co_return co_await impl_->scatter(self, nextSeq(self), root,
                                      std::move(chunks));
}

sim::Task<Vec>
Communicator::scatterv(Rank self, Rank root, Table chunks)
{
    co_return co_await impl_->scatter(self, nextSeq(self), root,
                                      std::move(chunks));
}

sim::Task<Table>
Communicator::allgather(Rank self, Vec contrib)
{
    co_return co_await impl_->allgather(self, nextSeq(self),
                                        std::move(contrib));
}

sim::Task<Table>
Communicator::allgatherv(Rank self, Vec contrib)
{
    co_return co_await impl_->allgather(self, nextSeq(self),
                                        std::move(contrib));
}

sim::Task<Table>
Communicator::alltoall(Rank self, Table sendbuf)
{
    co_return co_await impl_->alltoall(self, nextSeq(self),
                                       std::move(sendbuf));
}

sim::Task<Table>
Communicator::alltoallv(Rank self, Table sendbuf)
{
    co_return co_await impl_->alltoall(self, nextSeq(self),
                                       std::move(sendbuf));
}

sim::Task<Vec>
Communicator::scan(Rank self, Vec contrib, ReduceOp op)
{
    co_return co_await impl_->scan(self, nextSeq(self),
                                   std::move(contrib), op);
}

sim::Task<Vec>
Communicator::reduceScatter(Rank self, Table contrib, ReduceOp op)
{
    co_return co_await impl_->reduceScatter(self, nextSeq(self),
                                            std::move(contrib), op);
}

} // namespace tli::magpie
