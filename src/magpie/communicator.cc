#include "magpie/communicator.h"

#include <algorithm>
#include <utility>

#include "magpie/collectives_flat.h"
#include "magpie/collectives_magpie.h"
#include "magpie/collectives_segmented.h"
#include "magpie/tuning.h"

namespace tli::magpie {

namespace {

/** The tag spacing the original two-family library always used; kept
 *  as a floor so existing machines keep bit-identical tags. */
constexpr int kLegacyPhasesPerCall = 160;

} // namespace

Communicator::Communicator(panda::Panda &panda, CollectivePolicy policy)
    : panda_(panda), policy_(std::move(policy))
{
    const int ranks = panda.topology().totalRanks();
    phases_ = std::max(kLegacyPhasesPerCall,
                       policy_.phasesPerCall(ranks));
    if (policy_.isTuned()) {
        TLI_ASSERT(policy_.bound(),
                   "tuned policy must be bound to a gap point "
                   "(CollectivePolicy::boundTo) before use");
    }
    seq_.assign(ranks, 0);
}

Communicator::~Communicator() = default;

int
Communicator::size() const
{
    return panda_.topology().totalRanks();
}

Choice
Communicator::choiceFor(Op op, std::uint64_t bytes)
{
    const Choice c = policy_.isTuned()
                         ? policy_.table()->choose(policy_.gapIndex(),
                                                   op, bytes)
                         : policy_.choice(op);
    if (logged_.emplace(static_cast<int>(op), bytes).second) {
        dispatchLog_.push_back(std::string(opName(op)) + ':' +
                               std::to_string(bytes) + '=' + c.spec());
    }
    return c;
}

CollectivesImpl &
Communicator::implFor(const Choice &c)
{
    switch (c.family) {
      case Family::flat:
        if (!flat_)
            flat_ = std::make_unique<FlatCollectives>(panda_, phases_);
        return *flat_;
      case Family::magpie:
        if (!magpie_)
            magpie_ = std::make_unique<MagpieCollectives>(panda_, phases_);
        return *magpie_;
      case Family::segmented:
        break;
    }
    auto &slot = seg_[c.segmentBytes];
    if (!slot) {
        slot = std::make_unique<SegmentedCollectives>(panda_, phases_,
                                                      c.segmentBytes);
    }
    return *slot;
}

SegmentedCollectives &
Communicator::tunedBcastImpl()
{
    if (!tunedBcast_) {
        tunedBcast_ = std::make_unique<SegmentedCollectives>(panda_,
                                                             phases_, 0);
    }
    return *tunedBcast_;
}

sim::Task<void>
Communicator::barrier(Rank self)
{
    const Choice c = choiceFor(Op::barrier, 0);
    co_await implFor(c).barrier(self, nextSeq(self));
}

sim::Task<Vec>
Communicator::bcast(Rank self, Rank root, Vec data)
{
    if (policy_.isTuned()) {
        // Only the root knows the payload size the table keys on; the
        // other ranks receive protocol-agnostically (the tuned-bcast
        // candidate set is restricted to magpie/segmented for exactly
        // this reason).
        const int seq = nextSeq(self);
        Choice rootChoice;
        if (self == root)
            rootChoice = choiceFor(Op::bcast, wireSize(data));
        co_return co_await tunedBcastImpl().bcastTuned(
            self, seq, root, std::move(data), rootChoice);
    }
    const Choice c = choiceFor(Op::bcast, wireSize(data));
    co_return co_await implFor(c).bcast(self, nextSeq(self), root,
                                        std::move(data));
}

sim::Task<Vec>
Communicator::reduce(Rank self, Rank root, Vec contrib, ReduceOp op)
{
    const Choice c = choiceFor(Op::reduce, wireSize(contrib));
    co_return co_await implFor(c).reduce(self, nextSeq(self), root,
                                         std::move(contrib), op);
}

sim::Task<Vec>
Communicator::allreduce(Rank self, Vec contrib, ReduceOp op)
{
    const Choice c = choiceFor(Op::allreduce, wireSize(contrib));
    co_return co_await implFor(c).allreduce(self, nextSeq(self),
                                            std::move(contrib), op);
}

sim::Task<Table>
Communicator::gather(Rank self, Rank root, Vec contrib)
{
    const Choice c = choiceFor(Op::gather, wireSize(contrib));
    co_return co_await implFor(c).gather(self, nextSeq(self), root,
                                         std::move(contrib));
}

sim::Task<Table>
Communicator::gatherv(Rank self, Rank root, Vec contrib)
{
    // Ragged sizes differ across ranks, so the dispatch key must not
    // depend on them: *v forms use one size-aggregated decision.
    const Choice c = choiceFor(Op::gatherv, 0);
    co_return co_await implFor(c).gather(self, nextSeq(self), root,
                                         std::move(contrib));
}

sim::Task<Vec>
Communicator::scatter(Rank self, Rank root, Table chunks)
{
    // The payload is significant at the root only; non-roots may pass
    // an empty table, so scatter also dispatches size-aggregated.
    const Choice c = choiceFor(Op::scatter, 0);
    co_return co_await implFor(c).scatter(self, nextSeq(self), root,
                                          std::move(chunks));
}

sim::Task<Vec>
Communicator::scatterv(Rank self, Rank root, Table chunks)
{
    const Choice c = choiceFor(Op::scatterv, 0);
    co_return co_await implFor(c).scatter(self, nextSeq(self), root,
                                          std::move(chunks));
}

sim::Task<Table>
Communicator::allgather(Rank self, Vec contrib)
{
    const Choice c = choiceFor(Op::allgather, wireSize(contrib));
    co_return co_await implFor(c).allgather(self, nextSeq(self),
                                            std::move(contrib));
}

sim::Task<Table>
Communicator::allgatherv(Rank self, Vec contrib)
{
    const Choice c = choiceFor(Op::allgatherv, 0);
    co_return co_await implFor(c).allgather(self, nextSeq(self),
                                            std::move(contrib));
}

sim::Task<Table>
Communicator::alltoall(Rank self, Table sendbuf)
{
    const Choice c = choiceFor(Op::alltoall, wireSize(sendbuf));
    co_return co_await implFor(c).alltoall(self, nextSeq(self),
                                           std::move(sendbuf));
}

sim::Task<Table>
Communicator::alltoallv(Rank self, Table sendbuf)
{
    const Choice c = choiceFor(Op::alltoallv, 0);
    co_return co_await implFor(c).alltoall(self, nextSeq(self),
                                           std::move(sendbuf));
}

sim::Task<Vec>
Communicator::scan(Rank self, Vec contrib, ReduceOp op)
{
    const Choice c = choiceFor(Op::scan, wireSize(contrib));
    co_return co_await implFor(c).scan(self, nextSeq(self),
                                       std::move(contrib), op);
}

sim::Task<Vec>
Communicator::reduceScatter(Rank self, Table contrib, ReduceOp op)
{
    const Choice c = choiceFor(Op::reduce_scatter, wireSize(contrib));
    co_return co_await implFor(c).reduceScatter(self, nextSeq(self),
                                                std::move(contrib), op);
}

} // namespace tli::magpie
