/**
 * @file
 * MagPIe-style cluster-aware collective algorithms (paper §6): every
 * data item crosses a wide-area link at most once, wide-area transfers
 * happen in parallel, and intra-cluster phases use fast local trees.
 * One rank per cluster (the lowest) acts as the cluster coordinator.
 */

#ifndef TWOLAYER_MAGPIE_COLLECTIVES_MAGPIE_H_
#define TWOLAYER_MAGPIE_COLLECTIVES_MAGPIE_H_

#include "magpie/impl.h"

namespace tli::magpie {

class MagpieCollectives : public CollectivesImpl
{
  public:
    using CollectivesImpl::CollectivesImpl;

    sim::Task<void> barrier(Rank self, int seq) override;
    sim::Task<Vec> bcast(Rank self, int seq, Rank root, Vec data) override;
    sim::Task<Vec> reduce(Rank self, int seq, Rank root, Vec contrib,
                          ReduceOp op) override;
    sim::Task<Vec> allreduce(Rank self, int seq, Vec contrib,
                             ReduceOp op) override;
    sim::Task<Table> gather(Rank self, int seq, Rank root,
                            Vec contrib) override;
    sim::Task<Vec> scatter(Rank self, int seq, Rank root,
                           Table chunks) override;
    sim::Task<Table> allgather(Rank self, int seq, Vec contrib) override;
    sim::Task<Table> alltoall(Rank self, int seq, Table sendbuf) override;
    sim::Task<Vec> scan(Rank self, int seq, Vec contrib,
                        ReduceOp op) override;
    sim::Task<Vec> reduceScatter(Rank self, int seq, Table contrib,
                                 ReduceOp op) override;

  protected:
    Rank
    coordOf(ClusterId c) const
    {
        return topo().firstRankIn(c);
    }

    bool
    isCoord(Rank r) const
    {
        return coordOf(topo().clusterOf(r)) == r;
    }

    /** Broadcast with explicit tag phases (reused by allreduce). */
    sim::Task<Vec> bcastPhased(Rank self, int wan_tag, int local_tag,
                               Rank root, Vec data);

    /** Reduce with explicit tag phases (reused by allreduce). */
    sim::Task<Vec> reducePhased(Rank self, int local_tag, int wan_tag,
                                Rank root, Vec contrib, ReduceOp op);
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_COLLECTIVES_MAGPIE_H_
