/**
 * @file
 * The public collective-communication API: the fourteen MPI-1
 * collective operations over all ranks of the two-layer machine, with
 * a selectable algorithm family (flat MPICH-like baseline, or the
 * cluster-aware MagPIe algorithms of paper §6).
 */

#ifndef TWOLAYER_MAGPIE_COMMUNICATOR_H_
#define TWOLAYER_MAGPIE_COMMUNICATOR_H_

#include <memory>
#include <vector>

#include "magpie/impl.h"
#include "magpie/types.h"
#include "panda/panda.h"
#include "sim/task.h"

namespace tli::magpie {

/** Which collective algorithm family a Communicator uses. */
enum class Algorithm
{
    /** Topology-oblivious baselines in the style of MPICH 1.x. */
    flat,
    /** Cluster-aware wide-area-optimal algorithms (MagPIe). */
    magpie,
};

const char *algorithmName(Algorithm a);

/**
 * A communicator spanning every rank of the machine.
 *
 * Usage mirrors MPI: every rank must call the same sequence of
 * collective operations with matching arguments (same root, same
 * shapes). Each method is awaitable and completes when that rank's
 * participation is finished.
 *
 * Fixed-count operations (gather, scatter, allgather, alltoall,
 * reduce, allreduce, reduceScatter, scan, bcast) require equal-length
 * contributions on every rank; the *v variants accept ragged sizes.
 */
class Communicator
{
  public:
    Communicator(panda::Panda &panda, Algorithm algorithm);
    ~Communicator();

    int size() const;
    Algorithm algorithm() const { return algorithm_; }

    /** MPI_Barrier. */
    sim::Task<void> barrier(Rank self);

    /** MPI_Bcast: @p data is significant at @p root; returned on all. */
    sim::Task<Vec> bcast(Rank self, Rank root, Vec data);

    /** MPI_Reduce: result returned at @p root, empty elsewhere. */
    sim::Task<Vec> reduce(Rank self, Rank root, Vec contrib, ReduceOp op);

    /** MPI_Allreduce. */
    sim::Task<Vec> allreduce(Rank self, Vec contrib, ReduceOp op);

    /** MPI_Gather (uniform lengths enforced). */
    sim::Task<Table> gather(Rank self, Rank root, Vec contrib);

    /** MPI_Gatherv (ragged lengths allowed). */
    sim::Task<Table> gatherv(Rank self, Rank root, Vec contrib);

    /** MPI_Scatter: @p chunks significant at root, uniform lengths. */
    sim::Task<Vec> scatter(Rank self, Rank root, Table chunks);

    /** MPI_Scatterv. */
    sim::Task<Vec> scatterv(Rank self, Rank root, Table chunks);

    /** MPI_Allgather. */
    sim::Task<Table> allgather(Rank self, Vec contrib);

    /** MPI_Allgatherv. */
    sim::Task<Table> allgatherv(Rank self, Vec contrib);

    /** MPI_Alltoall: row d of @p sendbuf goes to rank d. */
    sim::Task<Table> alltoall(Rank self, Table sendbuf);

    /** MPI_Alltoallv. */
    sim::Task<Table> alltoallv(Rank self, Table sendbuf);

    /** MPI_Scan (inclusive prefix reduction). */
    sim::Task<Vec> scan(Rank self, Vec contrib, ReduceOp op);

    /** MPI_Reduce_scatter: row d of @p contrib is destined for rank d;
     *  each rank receives the element-wise reduction of its row. */
    sim::Task<Vec> reduceScatter(Rank self, Table contrib, ReduceOp op);

    /** Number of collective calls issued by rank 0 (diagnostics). */
    int callsIssued() const { return seq_.empty() ? 0 : seq_[0]; }

  private:
    int
    nextSeq(Rank self)
    {
        return seq_[self]++;
    }

    panda::Panda &panda_;
    Algorithm algorithm_;
    std::unique_ptr<CollectivesImpl> impl_;
    std::vector<int> seq_;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_COMMUNICATOR_H_
