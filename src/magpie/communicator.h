/**
 * @file
 * The public collective-communication API: the fourteen MPI-1
 * collective operations over all ranks of the two-layer machine, with
 * per-operation algorithm selection through a CollectivePolicy (flat
 * MPICH-like baselines, the cluster-aware MagPIe algorithms of paper
 * §6, pipelined segmented variants, or tuned dispatch from a persisted
 * decision table).
 */

#ifndef TWOLAYER_MAGPIE_COMMUNICATOR_H_
#define TWOLAYER_MAGPIE_COMMUNICATOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "magpie/policy.h"
#include "magpie/types.h"
#include "panda/panda.h"
#include "sim/task.h"

namespace tli::magpie {

class CollectivesImpl;
class FlatCollectives;
class MagpieCollectives;
class SegmentedCollectives;

/**
 * A communicator spanning every rank of the machine.
 *
 * Usage mirrors MPI: every rank must call the same sequence of
 * collective operations with matching arguments (same root, same
 * shapes). Each method is awaitable and completes when that rank's
 * participation is finished.
 *
 * Fixed-count operations (gather, scatter, allgather, alltoall,
 * reduce, allreduce, reduceScatter, scan, bcast) require equal-length
 * contributions on every rank; the *v variants accept ragged sizes.
 *
 * The policy maps every operation to its algorithm variant; a tuned
 * policy (CollectivePolicy::tuned, bound to a gap point) selects per
 * (operation, message size) from its decision table at call time.
 */
class Communicator
{
  public:
    Communicator(panda::Panda &panda, CollectivePolicy policy);
    ~Communicator();

    int size() const;
    const CollectivePolicy &policy() const { return policy_; }

    /** MPI_Barrier. */
    sim::Task<void> barrier(Rank self);

    /** MPI_Bcast: @p data is significant at @p root; returned on all. */
    sim::Task<Vec> bcast(Rank self, Rank root, Vec data);

    /** MPI_Reduce: result returned at @p root, empty elsewhere. */
    sim::Task<Vec> reduce(Rank self, Rank root, Vec contrib, ReduceOp op);

    /** MPI_Allreduce. */
    sim::Task<Vec> allreduce(Rank self, Vec contrib, ReduceOp op);

    /** MPI_Gather (uniform lengths enforced). */
    sim::Task<Table> gather(Rank self, Rank root, Vec contrib);

    /** MPI_Gatherv (ragged lengths allowed). */
    sim::Task<Table> gatherv(Rank self, Rank root, Vec contrib);

    /** MPI_Scatter: @p chunks significant at root, uniform lengths. */
    sim::Task<Vec> scatter(Rank self, Rank root, Table chunks);

    /** MPI_Scatterv. */
    sim::Task<Vec> scatterv(Rank self, Rank root, Table chunks);

    /** MPI_Allgather. */
    sim::Task<Table> allgather(Rank self, Vec contrib);

    /** MPI_Allgatherv. */
    sim::Task<Table> allgatherv(Rank self, Vec contrib);

    /** MPI_Alltoall: row d of @p sendbuf goes to rank d. */
    sim::Task<Table> alltoall(Rank self, Table sendbuf);

    /** MPI_Alltoallv. */
    sim::Task<Table> alltoallv(Rank self, Table sendbuf);

    /** MPI_Scan (inclusive prefix reduction). */
    sim::Task<Vec> scan(Rank self, Vec contrib, ReduceOp op);

    /** MPI_Reduce_scatter: row d of @p contrib is destined for rank d;
     *  each rank receives the element-wise reduction of its row. */
    sim::Task<Vec> reduceScatter(Rank self, Table contrib, ReduceOp op);

    /** Number of collective calls issued by rank 0 (diagnostics). */
    int callsIssued() const { return seq_.empty() ? 0 : seq_[0]; }

    /**
     * Distinct dispatch decisions taken so far, "op:bytes=variant" in
     * first-use order. Under a tuned policy this is the per-run record
     * that makes results reproducible; static policies log their fixed
     * choices the same way.
     */
    const std::vector<std::string> &dispatchLog() const
    {
        return dispatchLog_;
    }

  private:
    int
    nextSeq(Rank self)
    {
        return seq_[self]++;
    }

    /** The (possibly table-driven) variant for one call. */
    Choice choiceFor(Op op, std::uint64_t bytes);
    /** The lazily-created implementation behind a choice. */
    CollectivesImpl &implFor(const Choice &c);
    SegmentedCollectives &tunedBcastImpl();

    panda::Panda &panda_;
    CollectivePolicy policy_;
    int phases_;
    std::unique_ptr<FlatCollectives> flat_;
    std::unique_ptr<MagpieCollectives> magpie_;
    std::map<std::uint32_t, std::unique_ptr<SegmentedCollectives>> seg_;
    std::unique_ptr<SegmentedCollectives> tunedBcast_;
    std::vector<int> seq_;
    std::vector<std::string> dispatchLog_;
    std::set<std::pair<int, std::uint64_t>> logged_;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_COMMUNICATOR_H_
