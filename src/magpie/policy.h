/**
 * @file
 * CollectivePolicy: the per-operation algorithm-selection value type
 * that replaced the old binary Algorithm{flat, magpie} enum. A policy
 * maps each of the fourteen collective operations to a named variant
 * (flat, magpie, or segmented with a segment-size knob), or defers the
 * whole mapping to a persisted tuning table ("tuned" mode). The
 * canonical spec round trip (spec() / parseCollectivePolicy) is the one
 * spelling used by the --collectives flag, JSON reports, and
 * Scenario::fingerprint().
 */

#ifndef TWOLAYER_MAGPIE_POLICY_H_
#define TWOLAYER_MAGPIE_POLICY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace tli::magpie {

class TuningTable;

/** The fourteen collective operations, in canonical report order. */
enum class Op
{
    barrier,
    bcast,
    gather,
    gatherv,
    scatter,
    scatterv,
    allgather,
    allgatherv,
    alltoall,
    alltoallv,
    reduce,
    allreduce,
    reduce_scatter,
    scan,
};

inline constexpr int kOpCount = 14;

const char *opName(Op op);
std::optional<Op> parseOp(std::string_view text);

/** One collective-algorithm family. */
enum class Family
{
    /** Topology-oblivious baselines in the style of MPICH 1.x. */
    flat,
    /** Cluster-aware wide-area-optimal algorithms (MagPIe). */
    magpie,
    /** Cluster-aware with pipelined fixed-size segments. */
    segmented,
};

/**
 * The algorithm variant chosen for one operation. segmentBytes is
 * significant only for Family::segmented, where it is the pipelining
 * granularity (> 0). Specs: "flat", "magpie", "seg:16k" (k/M suffixes
 * accepted; the canonical rendering uses the largest suffix that
 * divides evenly).
 */
struct Choice
{
    Family family = Family::flat;
    std::uint32_t segmentBytes = 0;

    static Choice flat() { return {Family::flat, 0}; }
    static Choice magpie() { return {Family::magpie, 0}; }
    static Choice segmented(std::uint32_t bytes)
    {
        return {Family::segmented, bytes};
    }

    std::string spec() const;
    bool operator==(const Choice &) const = default;
};

std::optional<Choice> parseChoice(std::string_view text);

/** Whether @p op has a segmented variant (bcast/reduce/allreduce). */
bool segmentedSupported(Op op);

/**
 * Per-operation algorithm selection for a Communicator. A plain value
 * type: copyable, comparable, and round-trippable through its spec
 * string ("flat", "magpie", "magpie,bcast=seg:16k", ...).
 *
 * Tuned mode holds a shared decision table instead of fixed choices;
 * its spec is "tuned:<16-hex content hash>" (not parseable back — a
 * tuned policy is reconstructed from the table file). A tuned policy
 * must be bound to one of the table's (bandwidth, latency) gap points
 * with boundTo() before it can drive a Communicator.
 */
class CollectivePolicy
{
  public:
    /** Default: every operation uses the flat family. */
    CollectivePolicy() = default;

    static CollectivePolicy flat() { return CollectivePolicy{}; }
    static CollectivePolicy magpie();
    static CollectivePolicy tuned(std::shared_ptr<const TuningTable> table);

    const Choice &choice(Op op) const
    {
        return choices_[static_cast<int>(op)];
    }
    /** Panics on seg for an unsupported op, or on a tuned policy. */
    void set(Op op, Choice c);

    bool isTuned() const { return table_ != nullptr; }
    const TuningTable *table() const { return table_.get(); }
    std::shared_ptr<const TuningTable> sharedTable() const
    {
        return table_;
    }

    /** Tuned only: whether boundTo() has fixed the gap point. */
    bool bound() const { return gapIndex_ >= 0; }
    int gapIndex() const { return gapIndex_; }

    /**
     * Tuned only: return a copy bound to the table gap point nearest
     * (log-space) to the given wide-area bandwidth/latency.
     */
    CollectivePolicy boundTo(double bwMBs, double latMs) const;

    /** True for the default (all-flat, un-tuned) policy. */
    bool isDefault() const;

    /**
     * Canonical spec: a family head token covering the majority of the
     * operations plus ",op=variant" overrides in Op order, e.g.
     * "magpie,bcast=seg:16k". parseCollectivePolicy round-trips it.
     */
    std::string spec() const;

    /**
     * The message-tag phase budget one collective call may consume
     * under this policy on a machine of @p totalRanks ranks. The
     * Communicator derives its tag spacing from this (clamped below at
     * the historical 160 so existing runs keep identical tags).
     */
    int phasesPerCall(int totalRanks) const;

    bool operator==(const CollectivePolicy &o) const;
    bool operator!=(const CollectivePolicy &o) const { return !(*this == o); }

  private:
    std::array<Choice, kOpCount> choices_{};
    std::shared_ptr<const TuningTable> table_;
    int gapIndex_ = -1;
};

/**
 * Parse a policy spec: a head family token ("flat" / "magpie") and/or
 * comma-separated "op=variant" overrides. Returns nullopt on unknown
 * ops/variants, malformed sizes, seg on an unsupported op, or a
 * "tuned:..." spec (tuned policies load from a table file instead).
 */
std::optional<CollectivePolicy> parseCollectivePolicy(std::string_view text);

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_POLICY_H_
