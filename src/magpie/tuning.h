/**
 * @file
 * TuningTable: the in-memory decision table behind magpie::Tuned. The
 * tuner (tools/tli_tune) sweeps every algorithm variant per collective
 * over a (gap, size) grid and records the winner; a tuned Communicator
 * dispatches from the nearest trained cell at runtime. JSON
 * persistence ("tli-tuning-v1") lives in exec/tuning_io.h so this
 * library stays free of the core JSON dependency.
 */

#ifndef TWOLAYER_MAGPIE_TUNING_H_
#define TWOLAYER_MAGPIE_TUNING_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "magpie/policy.h"

namespace tli::magpie {

/**
 * Per-(gap, operation, size) winning variants for one machine shape.
 * Cells within an operation are sorted by ascending message size; an
 * operation whose dispatch key is not size-stable across ranks (the
 * ragged *v forms, scatter, barrier) carries a single aggregate cell
 * with sizeBytes == 0.
 */
class TuningTable
{
  public:
    struct GapPoint
    {
        double bwMBs = 0;
        double latMs = 0;
    };

    struct Cell
    {
        std::uint64_t sizeBytes = 0;
        Choice choice;
    };

    using OpCells = std::vector<Cell>;

    int clusters = 0;
    int procsPerCluster = 0;
    std::vector<GapPoint> gaps;
    /** Indexed [gap][op]; every op must have at least one cell. */
    std::vector<std::array<OpCells, kOpCount>> cells;

    /** Sorts cells and checks invariants; panics on a malformed table. */
    void finalize();

    /** Index of the gap point nearest in (log bw, log lat) space. */
    int nearestGap(double bwMBs, double latMs) const;

    /**
     * The trained choice for @p op at @p gap, picking the cell whose
     * size is nearest in log space (ties to the smaller size).
     */
    const Choice &choose(int gap, Op op, std::uint64_t sizeBytes) const;

    /**
     * Canonical text rendering of the decision content (schema line,
     * machine shape, gap points, cells). contentHash() is FNV-1a over
     * exactly this text, so two tables dispatch identically iff their
     * hashes match.
     */
    std::string canonicalText() const;
    std::uint64_t contentHash() const;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_TUNING_H_
