/**
 * @file
 * The internal strategy interface implemented by the flat (MPICH-like)
 * and MagPIe (cluster-aware) collective algorithm families, plus the
 * messaging and tree helpers they share.
 */

#ifndef TWOLAYER_MAGPIE_IMPL_H_
#define TWOLAYER_MAGPIE_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "magpie/types.h"
#include "panda/panda.h"
#include "sim/task.h"

namespace tli::magpie {

/**
 * One collective-algorithm family. Every method is invoked once per
 * participating rank with a call sequence number @p seq that is
 * identical across ranks for matching calls (the Communicator
 * guarantees this); implementations derive collision-free message tags
 * from it.
 *
 * Reduction operators must be associative and commutative: tree
 * reductions combine partial results in arrival order.
 */
class CollectivesImpl
{
  public:
    /**
     * @param phases_per_call tag spacing between consecutive collective
     *        calls. The Communicator derives it from its
     *        CollectivePolicy (never below the historical 160, so
     *        existing machines keep identical tags); segmented and
     *        large-rank-count variants raise it instead of overflowing.
     */
    CollectivesImpl(panda::Panda &panda, int phases_per_call)
        : panda_(panda), phasesPerCall_(phases_per_call)
    {
        TLI_ASSERT(phases_per_call > 0, "phase budget must be positive");
    }
    virtual ~CollectivesImpl() = default;

    virtual sim::Task<void> barrier(Rank self, int seq) = 0;
    virtual sim::Task<Vec> bcast(Rank self, int seq, Rank root,
                                 Vec data) = 0;
    virtual sim::Task<Vec> reduce(Rank self, int seq, Rank root,
                                  Vec contrib, ReduceOp op) = 0;
    virtual sim::Task<Vec> allreduce(Rank self, int seq, Vec contrib,
                                     ReduceOp op) = 0;
    virtual sim::Task<Table> gather(Rank self, int seq, Rank root,
                                    Vec contrib) = 0;
    virtual sim::Task<Vec> scatter(Rank self, int seq, Rank root,
                                   Table chunks) = 0;
    virtual sim::Task<Table> allgather(Rank self, int seq,
                                       Vec contrib) = 0;
    virtual sim::Task<Table> alltoall(Rank self, int seq,
                                      Table sendbuf) = 0;
    virtual sim::Task<Vec> scan(Rank self, int seq, Vec contrib,
                                ReduceOp op) = 0;
    virtual sim::Task<Vec> reduceScatter(Rank self, int seq,
                                         Table contrib, ReduceOp op) = 0;

  protected:
    /**
     * Message tag for phase @p phase of collective call @p seq.
     * Collision-free by construction: phases are confined to the
     * policy-derived per-call budget (asserted in debug) and the whole
     * tag must fit in int without wrapping into the next call's range.
     */
    int
    tagFor(int seq, int phase) const
    {
        TLI_ASSERT(phase >= 0 && phase < phasesPerCall_,
                   "collective phase out of range: ", phase);
        const std::int64_t tag =
            static_cast<std::int64_t>(tagBase) +
            static_cast<std::int64_t>(seq) * phasesPerCall_ + phase;
        TLI_ASSERT(tag <= std::numeric_limits<int>::max(),
                   "collective tag overflow at seq ", seq);
        return static_cast<int>(tag);
    }

    /** Send any payload type that has a wireSize() overload. */
    template <typename P>
    void
    sendAny(Rank self, Rank dst, int tag, P payload)
    {
        // The size must be read before the payload is moved into the
        // message (argument evaluation order is unspecified).
        const std::uint64_t bytes = wireSize(payload);
        panda_.send(self, dst, tag, bytes, std::move(payload));
    }

    template <typename P>
    sim::Task<P>
    recvAny(Rank self, int tag)
    {
        panda::Message m = co_await panda_.recv(self, tag);
        co_return m.take<P>();
    }

    /** Index of @p r in @p members; panics if absent. */
    static int
    indexOf(const std::vector<Rank> &members, Rank r)
    {
        auto it = std::find(members.begin(), members.end(), r);
        TLI_ASSERT(it != members.end(), "rank ", r, " not a member");
        return static_cast<int>(it - members.begin());
    }

    /**
     * Binomial-tree broadcast over an arbitrary participant set.
     * @p members lists the participants; @p local_root must be one of
     * them. Returns the data on every member. Works for any payload
     * with a wireSize() overload.
     */
    template <typename P>
    sim::Task<P>
    bcastOver(Rank self, int tag, const std::vector<Rank> &members,
              Rank local_root, P data)
    {
        const int n = static_cast<int>(members.size());
        const int root_idx = indexOf(members, local_root);
        const int vrank = (indexOf(members, self) - root_idx + n) % n;

        // Receive from the parent (every non-root vrank has one).
        int mask = 1;
        while (mask < n) {
            if (vrank & mask) {
                data = co_await recvAny<P>(self, tag);
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while (mask > 0) {
            if (vrank + mask < n) {
                Rank child = members[(vrank + mask + root_idx) % n];
                sendAny(self, child, tag, data);
            }
            mask >>= 1;
        }
        co_return data;
    }

    /**
     * Binomial-tree reduction to @p local_root over a rank set.
     * Non-root members return an empty payload.
     */
    template <typename P>
    sim::Task<P>
    reduceOver(Rank self, int tag, const std::vector<Rank> &members,
               Rank local_root, P contrib, ReduceOp op)
    {
        const int n = static_cast<int>(members.size());
        const int root_idx = indexOf(members, local_root);
        const int vrank = (indexOf(members, self) - root_idx + n) % n;

        int mask = 1;
        while (mask < n) {
            if (vrank & mask) {
                Rank parent = members[(vrank - mask + root_idx) % n];
                sendAny(self, parent, tag, std::move(contrib));
                co_return P{};
            }
            if (vrank + mask < n) {
                P child = co_await recvAny<P>(self, tag);
                op.combine(contrib, child);
            }
            mask <<= 1;
        }
        co_return contrib;
    }

    /**
     * Children of @p self in bcastOver's binomial tree over @p members
     * rooted at @p local_root, in bcastOver's exact send order. Used
     * by protocols that forward data chunk-by-chunk (and by the tuned
     * bcast receiver, which learns the protocol only from its first
     * message) — it must stay in lockstep with bcastOver above.
     */
    std::vector<Rank>
    bcastChildren(const std::vector<Rank> &members, Rank local_root,
                  Rank self) const
    {
        const int n = static_cast<int>(members.size());
        const int root_idx = indexOf(members, local_root);
        const int vrank = (indexOf(members, self) - root_idx + n) % n;

        int mask = 1;
        while (mask < n) {
            if (vrank & mask)
                break;
            mask <<= 1;
        }
        std::vector<Rank> children;
        mask >>= 1;
        while (mask > 0) {
            if (vrank + mask < n)
                children.push_back(members[(vrank + mask + root_idx) % n]);
            mask >>= 1;
        }
        return children;
    }

    /** Where @p self sits in reduceOver's binomial tree. */
    struct TreePosition
    {
        int childCount = 0;
        bool hasParent = false;
        Rank parent = 0;
    };

    TreePosition
    reduceTreePosition(const std::vector<Rank> &members, Rank local_root,
                       Rank self) const
    {
        const int n = static_cast<int>(members.size());
        const int root_idx = indexOf(members, local_root);
        const int vrank = (indexOf(members, self) - root_idx + n) % n;

        TreePosition pos;
        int mask = 1;
        while (mask < n) {
            if (vrank & mask) {
                pos.hasParent = true;
                pos.parent = members[(vrank - mask + root_idx) % n];
                break;
            }
            if (vrank + mask < n)
                ++pos.childCount;
            mask <<= 1;
        }
        return pos;
    }

    int size() const { return panda_.topology().totalRanks(); }
    const net::Topology &topo() const { return panda_.topology(); }

    static constexpr int tagBase = 1 << 16;

    panda::Panda &panda_;
    const int phasesPerCall_;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_IMPL_H_
