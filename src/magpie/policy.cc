#include "magpie/policy.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "magpie/tuning.h"
#include "sim/logging.h"

namespace tli::magpie {

namespace {

constexpr const char *kOpNames[kOpCount] = {
    "barrier",    "bcast",     "gather",   "gatherv",
    "scatter",    "scatterv",  "allgather", "allgatherv",
    "alltoall",   "alltoallv", "reduce",   "allreduce",
    "reduce_scatter", "scan",
};

/** Rounds of a doubling loop `for (d = 1; d < n; d <<= 1)`. */
int
ceilLog2(int n)
{
    int rounds = 0;
    for (int dist = 1; dist < n; dist <<= 1)
        ++rounds;
    return rounds;
}

/** Tag phases one call of @p op under @p c may consume at @p p ranks. */
int
phasesNeeded(Op op, const Choice &c, int p)
{
    switch (c.family) {
      case Family::flat:
        switch (op) {
          case Op::barrier:
          case Op::scan:
            return std::max(1, ceilLog2(p));
          case Op::alltoall:
          case Op::alltoallv:
            // Pairwise exchange uses phases 1..p-1.
            return std::max(2, p);
          case Op::allreduce:
          case Op::reduce_scatter:
            return 2;
          default:
            return 1;
        }
      case Family::magpie:
        switch (op) {
          case Op::scan:
            // Phases 0..19 local rounds, 20 chain, 21 offset bcast.
            return 22;
          case Op::barrier:
          case Op::allreduce:
            return 4;
          case Op::allgather:
          case Op::allgatherv:
          case Op::alltoall:
          case Op::alltoallv:
          case Op::reduce_scatter:
            return 3;
          default:
            return 2;
        }
      case Family::segmented:
        return op == Op::allreduce ? 4 : 2;
    }
    return 2;
}

std::string
renderSegBytes(std::uint32_t bytes)
{
    constexpr std::uint32_t kMi = 1024u * 1024u;
    char buf[32];
    if (bytes % kMi == 0)
        std::snprintf(buf, sizeof buf, "%uM", bytes / kMi);
    else if (bytes % 1024u == 0)
        std::snprintf(buf, sizeof buf, "%uk", bytes / 1024u);
    else
        std::snprintf(buf, sizeof buf, "%u", bytes);
    return buf;
}

std::optional<std::uint32_t>
parseSegBytes(std::string_view s)
{
    std::uint64_t value = 0;
    std::size_t i = 0;
    for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
        value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
        if (value > (1ull << 32))
            return std::nullopt;
    }
    if (i == 0)
        return std::nullopt;
    if (i < s.size()) {
        const std::string_view suffix = s.substr(i);
        if (suffix == "k" || suffix == "K")
            value *= 1024;
        else if (suffix == "M")
            value *= 1024u * 1024u;
        else
            return std::nullopt;
    }
    if (value == 0 || value > 0xFFFFFFFFull)
        return std::nullopt;
    return static_cast<std::uint32_t>(value);
}

} // namespace

const char *
opName(Op op)
{
    return kOpNames[static_cast<int>(op)];
}

std::optional<Op>
parseOp(std::string_view text)
{
    for (int i = 0; i < kOpCount; ++i) {
        if (text == kOpNames[i])
            return static_cast<Op>(i);
    }
    return std::nullopt;
}

std::string
Choice::spec() const
{
    switch (family) {
      case Family::flat:
        return "flat";
      case Family::magpie:
        return "magpie";
      case Family::segmented:
        return "seg:" + renderSegBytes(segmentBytes);
    }
    return "?";
}

std::optional<Choice>
parseChoice(std::string_view text)
{
    if (text == "flat")
        return Choice::flat();
    if (text == "magpie")
        return Choice::magpie();
    constexpr std::string_view kSeg = "seg:";
    if (text.substr(0, kSeg.size()) == kSeg) {
        auto bytes = parseSegBytes(text.substr(kSeg.size()));
        if (!bytes)
            return std::nullopt;
        return Choice::segmented(*bytes);
    }
    return std::nullopt;
}

bool
segmentedSupported(Op op)
{
    return op == Op::bcast || op == Op::reduce || op == Op::allreduce;
}

CollectivePolicy
CollectivePolicy::magpie()
{
    CollectivePolicy p;
    p.choices_.fill(Choice::magpie());
    return p;
}

CollectivePolicy
CollectivePolicy::tuned(std::shared_ptr<const TuningTable> table)
{
    TLI_ASSERT(table != nullptr, "tuned policy needs a table");
    CollectivePolicy p;
    p.table_ = std::move(table);
    return p;
}

void
CollectivePolicy::set(Op op, Choice c)
{
    TLI_ASSERT(!isTuned(), "cannot override choices on a tuned policy");
    if (c.family == Family::segmented) {
        TLI_ASSERT(segmentedSupported(op), "no segmented variant for ",
                   opName(op));
        TLI_ASSERT(c.segmentBytes > 0, "segment size must be positive");
    }
    choices_[static_cast<int>(op)] = c;
}

CollectivePolicy
CollectivePolicy::boundTo(double bwMBs, double latMs) const
{
    TLI_ASSERT(isTuned(), "boundTo only applies to tuned policies");
    CollectivePolicy p = *this;
    p.gapIndex_ = table_->nearestGap(bwMBs, latMs);
    return p;
}

bool
CollectivePolicy::isDefault() const
{
    if (isTuned())
        return false;
    for (const Choice &c : choices_) {
        if (!(c == Choice::flat()))
            return false;
    }
    return true;
}

std::string
CollectivePolicy::spec() const
{
    if (isTuned()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "tuned:%016llx",
                      static_cast<unsigned long long>(
                          table_->contentHash()));
        return buf;
    }
    int magpieCount = 0;
    int flatCount = 0;
    for (const Choice &c : choices_) {
        if (c == Choice::magpie())
            ++magpieCount;
        else if (c == Choice::flat())
            ++flatCount;
    }
    const Choice head =
        magpieCount > flatCount ? Choice::magpie() : Choice::flat();
    std::string out = head.spec();
    for (int i = 0; i < kOpCount; ++i) {
        if (!(choices_[i] == head)) {
            out += ',';
            out += kOpNames[i];
            out += '=';
            out += choices_[i].spec();
        }
    }
    return out;
}

int
CollectivePolicy::phasesPerCall(int totalRanks) const
{
    int need = 1;
    for (int i = 0; i < kOpCount; ++i) {
        const Op op = static_cast<Op>(i);
        if (isTuned()) {
            // Worst case over every family Tuned may select for op.
            need = std::max(need,
                            phasesNeeded(op, Choice::flat(), totalRanks));
            need = std::max(
                need, phasesNeeded(op, Choice::magpie(), totalRanks));
            if (segmentedSupported(op))
                need = std::max(need, phasesNeeded(op, Choice::segmented(1),
                                                   totalRanks));
        } else {
            need = std::max(need,
                            phasesNeeded(op, choices_[i], totalRanks));
        }
    }
    return need;
}

bool
CollectivePolicy::operator==(const CollectivePolicy &o) const
{
    if (isTuned() != o.isTuned())
        return false;
    if (isTuned()) {
        return gapIndex_ == o.gapIndex_ &&
               table_->contentHash() == o.table_->contentHash();
    }
    return choices_ == o.choices_;
}

std::optional<CollectivePolicy>
parseCollectivePolicy(std::string_view text)
{
    if (text.empty() || text.substr(0, 6) == "tuned:")
        return std::nullopt;

    CollectivePolicy policy;
    bool first = true;
    while (!text.empty() || first) {
        const std::size_t comma = text.find(',');
        const std::string_view token = text.substr(0, comma);
        text = comma == std::string_view::npos
                   ? std::string_view{}
                   : text.substr(comma + 1);
        if (comma != std::string_view::npos && text.empty())
            return std::nullopt; // trailing comma
        if (first && token == "flat") {
            first = false;
            continue;
        }
        if (first && token == "magpie") {
            policy = CollectivePolicy::magpie();
            first = false;
            continue;
        }
        first = false;
        const std::size_t eq = token.find('=');
        if (eq == std::string_view::npos)
            return std::nullopt;
        const auto op = parseOp(token.substr(0, eq));
        const auto choice = parseChoice(token.substr(eq + 1));
        if (!op || !choice)
            return std::nullopt;
        if (choice->family == Family::segmented &&
            !segmentedSupported(*op))
            return std::nullopt;
        policy.set(*op, *choice);
    }
    return policy;
}

} // namespace tli::magpie
