#include "magpie/collectives_magpie.h"

#include <utility>

namespace tli::magpie {

sim::Task<Vec>
MagpieCollectives::bcastPhased(Rank self, int wan_tag, int local_tag,
                               Rank root, Vec data)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);

    if (self == root) {
        // One asynchronous wide-area transfer per remote cluster; they
        // proceed in parallel on the per-cluster-pair links.
        for (ClusterId c = 0; c < t.clusterCount(); ++c) {
            if (c != root_cluster)
                sendAny(self, coordOf(c), wan_tag, data);
        }
    }

    Rank local_root = (mine == root_cluster) ? root : coordOf(mine);
    if (self == local_root && mine != root_cluster)
        data = co_await recvAny<Vec>(self, wan_tag);

    co_return co_await bcastOver(self, local_tag,
                                 t.ranksInCluster(mine), local_root,
                                 std::move(data));
}

sim::Task<Vec>
MagpieCollectives::reducePhased(Rank self, int local_tag, int wan_tag,
                                Rank root, Vec contrib, ReduceOp op)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);

    Rank local_root = (mine == root_cluster) ? root : coordOf(mine);
    Vec partial = co_await reduceOver(self, local_tag,
                                      t.ranksInCluster(mine), local_root,
                                      std::move(contrib), op);

    if (self == local_root && mine != root_cluster) {
        // One wide-area message per remote cluster, straight to root.
        sendAny(self, root, wan_tag, std::move(partial));
        co_return Vec{};
    }
    if (self == root) {
        for (int i = 0; i < t.clusterCount() - 1; ++i) {
            Vec remote = co_await recvAny<Vec>(self, wan_tag);
            op.combine(partial, remote);
        }
        co_return partial;
    }
    co_return Vec{};
}

sim::Task<void>
MagpieCollectives::barrier(Rank self, int seq)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const Rank coord = coordOf(mine);
    const Rank coord0 = coordOf(0);
    const int procs = t.procsPerCluster();
    const int clusters = t.clusterCount();

    const int local_up = tagFor(seq, 0);
    const int wan_up = tagFor(seq, 1);
    const int wan_down = tagFor(seq, 2);
    const int local_down = tagFor(seq, 3);

    if (self != coord) {
        sendAny(self, coord, local_up, Vec{});
        (void)co_await recvAny<Vec>(self, local_down);
        co_return;
    }

    // Coordinator: collect the local cluster...
    for (int i = 0; i < procs - 1; ++i)
        (void)co_await recvAny<Vec>(self, local_up);

    // ...synchronize the coordinators through cluster 0...
    if (self != coord0) {
        sendAny(self, coord0, wan_up, Vec{});
        (void)co_await recvAny<Vec>(self, wan_down);
    } else {
        for (int i = 0; i < clusters - 1; ++i)
            (void)co_await recvAny<Vec>(self, wan_up);
        for (ClusterId c = 1; c < clusters; ++c)
            sendAny(self, coordOf(c), wan_down, Vec{});
    }

    // ...and release the local cluster.
    for (Rank r : t.ranksInCluster(mine)) {
        if (r != self)
            sendAny(self, r, local_down, Vec{});
    }
}

sim::Task<Vec>
MagpieCollectives::bcast(Rank self, int seq, Rank root, Vec data)
{
    co_return co_await bcastPhased(self, tagFor(seq, 0), tagFor(seq, 1),
                                   root, std::move(data));
}

sim::Task<Vec>
MagpieCollectives::reduce(Rank self, int seq, Rank root, Vec contrib,
                          ReduceOp op)
{
    co_return co_await reducePhased(self, tagFor(seq, 0), tagFor(seq, 1),
                                    root, std::move(contrib), op);
}

sim::Task<Vec>
MagpieCollectives::allreduce(Rank self, int seq, Vec contrib, ReduceOp op)
{
    Vec total = co_await reducePhased(self, tagFor(seq, 0),
                                      tagFor(seq, 1), 0,
                                      std::move(contrib), op);
    co_return co_await bcastPhased(self, tagFor(seq, 2), tagFor(seq, 3),
                                   0, std::move(total));
}

sim::Task<Table>
MagpieCollectives::gather(Rank self, int seq, Rank root, Vec contrib)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);
    const int procs = t.procsPerCluster();

    const int local_tag = tagFor(seq, 0);
    const int wan_tag = tagFor(seq, 1);

    if (mine == root_cluster) {
        if (self != root) {
            sendAny(self, root, local_tag,
                    LabelledVec{self, std::move(contrib)});
            co_return Table{};
        }
        Table out(size());
        out[root] = std::move(contrib);
        for (int i = 0; i < procs - 1; ++i) {
            LabelledVec lv = co_await recvAny<LabelledVec>(self,
                                                           local_tag);
            out[lv.first] = std::move(lv.second);
        }
        for (int c = 0; c < t.clusterCount() - 1; ++c) {
            Bundle b = co_await recvAny<Bundle>(self, wan_tag);
            for (auto &lv : b)
                out[lv.first] = std::move(lv.second);
        }
        co_return out;
    }

    const Rank coord = coordOf(mine);
    if (self != coord) {
        sendAny(self, coord, local_tag,
                LabelledVec{self, std::move(contrib)});
        co_return Table{};
    }
    Bundle bundle;
    bundle.emplace_back(self, std::move(contrib));
    for (int i = 0; i < procs - 1; ++i)
        bundle.push_back(co_await recvAny<LabelledVec>(self, local_tag));
    // The whole cluster's data crosses the wide area exactly once.
    sendAny(self, root, wan_tag, std::move(bundle));
    co_return Table{};
}

sim::Task<Vec>
MagpieCollectives::scatter(Rank self, int seq, Rank root, Table chunks)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);

    const int wan_tag = tagFor(seq, 0);
    const int local_tag = tagFor(seq, 1);

    if (self == root) {
        TLI_ASSERT(static_cast<int>(chunks.size()) == size(),
                   "scatter needs one chunk per rank");
        for (ClusterId c = 0; c < t.clusterCount(); ++c) {
            if (c == root_cluster)
                continue;
            Bundle bundle;
            for (Rank m : t.ranksInCluster(c))
                bundle.emplace_back(m, std::move(chunks[m]));
            sendAny(self, coordOf(c), wan_tag, std::move(bundle));
        }
        for (Rank m : t.ranksInCluster(root_cluster)) {
            if (m != root)
                sendAny(self, m, local_tag, std::move(chunks[m]));
        }
        co_return std::move(chunks[root]);
    }

    if (isCoord(self) && mine != root_cluster) {
        Bundle bundle = co_await recvAny<Bundle>(self, wan_tag);
        Vec own;
        for (auto &lv : bundle) {
            if (lv.first == self)
                own = std::move(lv.second);
            else
                sendAny(self, lv.first, local_tag, std::move(lv.second));
        }
        co_return own;
    }

    co_return co_await recvAny<Vec>(self, local_tag);
}

sim::Task<Table>
MagpieCollectives::allgather(Rank self, int seq, Vec contrib)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const Rank coord = coordOf(mine);
    const int procs = t.procsPerCluster();
    const int clusters = t.clusterCount();

    const int local_up = tagFor(seq, 0);
    const int wan_xchg = tagFor(seq, 1);
    const int local_down = tagFor(seq, 2);

    if (self != coord) {
        sendAny(self, coord, local_up,
                LabelledVec{self, std::move(contrib)});
        co_return co_await bcastOver(self, local_down,
                                     t.ranksInCluster(mine), coord,
                                     Table{});
    }

    Bundle bundle;
    bundle.emplace_back(self, std::move(contrib));
    for (int i = 0; i < procs - 1; ++i)
        bundle.push_back(co_await recvAny<LabelledVec>(self, local_up));

    // All-to-all among coordinators: each cluster's data crosses each
    // wide-area link exactly once, in parallel.
    for (ClusterId c = 0; c < clusters; ++c) {
        if (c != mine)
            sendAny(self, coordOf(c), wan_xchg, bundle);
    }
    Table out(size());
    for (auto &lv : bundle)
        out[lv.first] = std::move(lv.second);
    for (int i = 0; i < clusters - 1; ++i) {
        Bundle remote = co_await recvAny<Bundle>(self, wan_xchg);
        for (auto &lv : remote)
            out[lv.first] = std::move(lv.second);
    }
    co_return co_await bcastOver(self, local_down,
                                 t.ranksInCluster(mine), coord,
                                 std::move(out));
}

sim::Task<Table>
MagpieCollectives::alltoall(Rank self, int seq, Table sendbuf)
{
    const auto &t = topo();
    const int p = size();
    TLI_ASSERT(static_cast<int>(sendbuf.size()) == p,
               "alltoall needs one row per rank");
    const ClusterId mine = t.clusterOf(self);
    const int procs = t.procsPerCluster();

    const int local_tag = tagFor(seq, 0);
    const int wan_tag = tagFor(seq, 1);
    const int fwd_tag = tagFor(seq, 2);

    Table out(p);
    out[self] = std::move(sendbuf[self]);

    // Direct transfers inside the cluster.
    for (Rank m : t.ranksInCluster(mine)) {
        if (m != self)
            sendAny(self, m, local_tag,
                    LabelledVec{self, std::move(sendbuf[m])});
    }
    // Sender-side combining: everything for cluster c leaves in one
    // wide-area message to c's coordinator.
    for (ClusterId c = 0; c < t.clusterCount(); ++c) {
        if (c == mine)
            continue;
        RoutedBundle bundle;
        for (Rank m : t.ranksInCluster(c))
            bundle.push_back(RoutedVec{self, m, std::move(sendbuf[m])});
        sendAny(self, coordOf(c), wan_tag, std::move(bundle));
    }

    int expected_forwarded = p - procs;
    if (isCoord(self)) {
        // Dispatch incoming bundles to their final destinations.
        for (int i = 0; i < p - procs; ++i) {
            RoutedBundle bundle = co_await recvAny<RoutedBundle>(self,
                                                                 wan_tag);
            for (auto &rv : bundle) {
                if (rv.dst == self) {
                    out[rv.src] = std::move(rv.data);
                    --expected_forwarded;
                } else {
                    sendAny(self, rv.dst, fwd_tag,
                            LabelledVec{rv.src, std::move(rv.data)});
                }
            }
        }
    }
    for (int i = 0; i < procs - 1; ++i) {
        LabelledVec lv = co_await recvAny<LabelledVec>(self, local_tag);
        out[lv.first] = std::move(lv.second);
    }
    if (!isCoord(self)) {
        for (int i = 0; i < expected_forwarded; ++i) {
            LabelledVec lv = co_await recvAny<LabelledVec>(self, fwd_tag);
            out[lv.first] = std::move(lv.second);
        }
    }
    co_return out;
}

sim::Task<Vec>
MagpieCollectives::scan(Rank self, int seq, Vec contrib, ReduceOp op)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const auto members = t.ranksInCluster(mine);
    const int procs = static_cast<int>(members.size());
    const int my_idx = t.indexInCluster(self);

    // Phases 0..19: local recursive-doubling scan rounds.
    // Phase 20: wide-area chain of cluster prefixes.
    // Phase 21: local broadcast of the cluster offset.
    const int chain_tag = tagFor(seq, 20);
    const int offset_tag = tagFor(seq, 21);

    Vec result = contrib;
    Vec partial = std::move(contrib);
    int round = 0;
    for (int dist = 1; dist < procs; dist <<= 1, ++round) {
        const int tag = tagFor(seq, round);
        if (my_idx + dist < procs)
            sendAny(self, members[my_idx + dist], tag, partial);
        if (my_idx - dist >= 0) {
            Vec lower = co_await recvAny<Vec>(self, tag);
            op.combine(partial, lower);
            op.combine(result, lower);
        }
    }
    // result = inclusive prefix within the cluster; the last member's
    // copy is the cluster total.
    const Rank chain_node = members.back();
    Vec cluster_offset; // combined total of all preceding clusters

    if (self == chain_node) {
        Vec through_me = result; // will become prefix through cluster
        if (mine > 0) {
            cluster_offset = co_await recvAny<Vec>(self, chain_tag);
            op.combine(through_me, cluster_offset);
        }
        if (mine + 1 < t.clusterCount()) {
            Rank next = t.ranksInCluster(mine + 1).back();
            sendAny(self, next, chain_tag, std::move(through_me));
        }
    }
    if (mine > 0) {
        cluster_offset = co_await bcastOver(self, offset_tag, members,
                                            chain_node,
                                            std::move(cluster_offset));
        op.combine(result, cluster_offset);
    }
    co_return result;
}

sim::Task<Vec>
MagpieCollectives::reduceScatter(Rank self, int seq, Table contrib,
                                 ReduceOp op)
{
    const auto &t = topo();
    const int p = size();
    TLI_ASSERT(static_cast<int>(contrib.size()) == p,
               "reduceScatter needs one row per destination rank");
    const ClusterId mine = t.clusterOf(self);
    const Rank coord = coordOf(mine);
    const auto members = t.ranksInCluster(mine);

    const int local_up = tagFor(seq, 0);
    const int wan_tag = tagFor(seq, 1);
    const int local_down = tagFor(seq, 2);

    // Local reduction of the full table to the coordinator.
    Table partial = co_await reduceOver(self, local_up, members, coord,
                                        std::move(contrib), op);

    if (self != coord)
        co_return co_await recvAny<Vec>(self, local_down);

    // Ship combined per-cluster slices: one wide-area message per pair.
    for (ClusterId c = 0; c < t.clusterCount(); ++c) {
        if (c == mine)
            continue;
        Bundle bundle;
        for (Rank m : t.ranksInCluster(c))
            bundle.emplace_back(m, std::move(partial[m]));
        sendAny(self, coordOf(c), wan_tag, std::move(bundle));
    }
    for (int i = 0; i < t.clusterCount() - 1; ++i) {
        Bundle remote = co_await recvAny<Bundle>(self, wan_tag);
        for (auto &lv : remote)
            op.combine(partial[lv.first], lv.second);
    }
    for (Rank m : members) {
        if (m != self)
            sendAny(self, m, local_down, std::move(partial[m]));
    }
    co_return std::move(partial[self]);
}

} // namespace tli::magpie
