/**
 * @file
 * Segmented (pipelined) cluster-aware collectives: bcast, reduce, and
 * allreduce variants that split payloads into fixed-size segments and
 * stream them through the MagPIe store-and-forward trees, overlapping
 * wide-area transfers with local forwarding (in the style of "Fast
 * Tuning of Intra-Cluster Collective Communications"). The remaining
 * operations inherit the MagPIe algorithms.
 *
 * Segment streams are self-describing (each chunk carries its label),
 * so receivers never need to know the sender's segment size — which is
 * what makes the tuned bcast possible: only the root knows the variant
 * the tuning table picked for its payload size, and every other rank
 * recognises the protocol from the type of its first message.
 */

#ifndef TWOLAYER_MAGPIE_COLLECTIVES_SEGMENTED_H_
#define TWOLAYER_MAGPIE_COLLECTIVES_SEGMENTED_H_

#include <cstdint>

#include "magpie/collectives_magpie.h"
#include "magpie/policy.h"

namespace tli::magpie {

class SegmentedCollectives : public MagpieCollectives
{
  public:
    SegmentedCollectives(panda::Panda &panda, int phases_per_call,
                         std::uint32_t segment_bytes)
        : MagpieCollectives(panda, phases_per_call),
          segmentBytes_(segment_bytes)
    {
    }

    sim::Task<Vec> bcast(Rank self, int seq, Rank root, Vec data) override;
    sim::Task<Vec> reduce(Rank self, int seq, Rank root, Vec contrib,
                          ReduceOp op) override;
    sim::Task<Vec> allreduce(Rank self, int seq, Vec contrib,
                             ReduceOp op) override;

    /**
     * Tuned-mode broadcast: @p rootChoice (magpie or segmented) is
     * significant only at the root; every other rank receives
     * protocol-agnostically. The classic path issues exactly the same
     * messages at the same times as MagpieCollectives::bcast.
     */
    sim::Task<Vec> bcastTuned(Rank self, int seq, Rank root, Vec data,
                              Choice rootChoice);

  private:
    /** Shared tag-level broadcast behind bcast/bcastTuned/allreduce. */
    sim::Task<Vec> bcastAuto(Rank self, int wan_tag, int local_tag,
                             Rank root, Vec data, Choice rootChoice);

    /** Segmented reduce (local trees, then per-segment WAN stream). */
    sim::Task<Vec> reduceSegmented(Rank self, int local_tag, int wan_tag,
                                   Rank root, Vec contrib, ReduceOp op);

    std::uint32_t segmentBytes_;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_COLLECTIVES_SEGMENTED_H_
