#include "magpie/tuning.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.h"

namespace tli::magpie {

namespace {

/** FNV-1a, matching the project's canonical stable string hash. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

double
logOf(double v)
{
    return std::log(std::max(v, 1e-12));
}

} // namespace

void
TuningTable::finalize()
{
    TLI_ASSERT(clusters > 0 && procsPerCluster > 0,
               "tuning table needs a machine shape");
    TLI_ASSERT(!gaps.empty(), "tuning table needs at least one gap point");
    TLI_ASSERT(cells.size() == gaps.size(),
               "tuning table needs one cell block per gap point");
    for (auto &block : cells) {
        for (int op = 0; op < kOpCount; ++op) {
            OpCells &oc = block[op];
            TLI_ASSERT(!oc.empty(), "tuning table missing cells for ",
                       opName(static_cast<Op>(op)));
            std::sort(oc.begin(), oc.end(),
                      [](const Cell &a, const Cell &b) {
                          return a.sizeBytes < b.sizeBytes;
                      });
            for (std::size_t i = 1; i < oc.size(); ++i) {
                TLI_ASSERT(oc[i - 1].sizeBytes < oc[i].sizeBytes,
                           "duplicate tuning cell size for ",
                           opName(static_cast<Op>(op)));
            }
        }
    }
}

int
TuningTable::nearestGap(double bwMBs, double latMs) const
{
    TLI_ASSERT(!gaps.empty(), "empty tuning table");
    int best = 0;
    double bestDist = 0;
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        const double db = logOf(bwMBs) - logOf(gaps[i].bwMBs);
        const double dl = logOf(latMs) - logOf(gaps[i].latMs);
        const double dist = db * db + dl * dl;
        if (i == 0 || dist < bestDist) {
            best = static_cast<int>(i);
            bestDist = dist;
        }
    }
    return best;
}

const Choice &
TuningTable::choose(int gap, Op op, std::uint64_t sizeBytes) const
{
    TLI_ASSERT(gap >= 0 && gap < static_cast<int>(cells.size()),
               "tuning gap index out of range: ", gap);
    const OpCells &oc = cells[gap][static_cast<int>(op)];
    const double want = logOf(static_cast<double>(std::max<std::uint64_t>(
        sizeBytes, 1)));
    int best = 0;
    double bestDist = 0;
    for (std::size_t i = 0; i < oc.size(); ++i) {
        const double have = logOf(static_cast<double>(
            std::max<std::uint64_t>(oc[i].sizeBytes, 1)));
        const double dist = std::fabs(want - have);
        if (i == 0 || dist < bestDist) {
            best = static_cast<int>(i);
            bestDist = dist;
        }
    }
    return oc[best].choice;
}

std::string
TuningTable::canonicalText() const
{
    std::string out = "tli-tuning-v1\n";
    char buf[128];
    std::snprintf(buf, sizeof buf, "machine=%dx%d\n", clusters,
                  procsPerCluster);
    out += buf;
    for (std::size_t g = 0; g < gaps.size(); ++g) {
        std::snprintf(buf, sizeof buf, "gap bw=%.17g lat=%.17g\n",
                      gaps[g].bwMBs, gaps[g].latMs);
        out += buf;
        for (int op = 0; op < kOpCount; ++op) {
            for (const Cell &cell : cells[g][op]) {
                std::snprintf(buf, sizeof buf, "%s %llu %s\n",
                              opName(static_cast<Op>(op)),
                              static_cast<unsigned long long>(
                                  cell.sizeBytes),
                              cell.choice.spec().c_str());
                out += buf;
            }
        }
    }
    return out;
}

std::uint64_t
TuningTable::contentHash() const
{
    return fnv1a(canonicalText());
}

} // namespace tli::magpie
