/**
 * @file
 * Value types shared by the collective-communication library.
 */

#ifndef TWOLAYER_MAGPIE_TYPES_H_
#define TWOLAYER_MAGPIE_TYPES_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace tli::magpie {

/** The universal element buffer (models an MPI_DOUBLE buffer). */
using Vec = std::vector<double>;

/** Per-rank buffers (ragged rows model the MPI "v" variants). */
using Table = std::vector<Vec>;

/** A buffer labelled with the rank it originated from. */
using LabelledVec = std::pair<Rank, Vec>;

/** A buffer routed through an intermediary: source, destination, data. */
struct RoutedVec
{
    Rank src = invalidNode;
    Rank dst = invalidNode;
    Vec data;
};

/** A combined message carrying several labelled buffers. */
using Bundle = std::vector<LabelledVec>;

/** A combined message carrying several routed buffers. */
using RoutedBundle = std::vector<RoutedVec>;

/** Simulated wire size of a Vec. */
inline std::uint64_t
wireSize(const Vec &v)
{
    return 8 * v.size();
}

/** Simulated wire size of a Table (8 bytes of framing per row). */
inline std::uint64_t
wireSize(const Table &t)
{
    std::uint64_t n = 0;
    for (const auto &row : t)
        n += 8 + wireSize(row);
    return n;
}

inline std::uint64_t
wireSize(const LabelledVec &lv)
{
    return 8 + wireSize(lv.second);
}

inline std::uint64_t
wireSize(const RoutedVec &rv)
{
    return 16 + wireSize(rv.data);
}

inline std::uint64_t
wireSize(const Bundle &b)
{
    std::uint64_t n = 0;
    for (const auto &lv : b)
        n += wireSize(lv);
    return n;
}

inline std::uint64_t
wireSize(const RoutedBundle &b)
{
    std::uint64_t n = 0;
    for (const auto &rv : b)
        n += wireSize(rv);
    return n;
}

/**
 * An associative, commutative element-wise reduction operator
 * (models MPI_Op for the predefined operators).
 */
class ReduceOp
{
  public:
    using Fn = std::function<double(double, double)>;

    explicit ReduceOp(Fn fn) : fn_(std::move(fn)) {}

    static ReduceOp
    sum()
    {
        return ReduceOp([](double a, double b) { return a + b; });
    }

    static ReduceOp
    prod()
    {
        return ReduceOp([](double a, double b) { return a * b; });
    }

    static ReduceOp
    min()
    {
        return ReduceOp([](double a, double b) { return a < b ? a : b; });
    }

    static ReduceOp
    max()
    {
        return ReduceOp([](double a, double b) { return a > b ? a : b; });
    }

    double operator()(double a, double b) const { return fn_(a, b); }

    /** Element-wise combine @p b into @p a (sizes must match). */
    void
    combine(Vec &a, const Vec &b) const
    {
        TLI_ASSERT(a.size() == b.size(), "reduce length mismatch: ",
                   a.size(), " vs ", b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            a[i] = fn_(a[i], b[i]);
    }

    /** Row-wise combine of equally-shaped tables. */
    void
    combine(Table &a, const Table &b) const
    {
        TLI_ASSERT(a.size() == b.size(), "reduce table shape mismatch");
        for (std::size_t i = 0; i < a.size(); ++i)
            combine(a[i], b[i]);
    }

  private:
    Fn fn_;
};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_TYPES_H_
