#include "magpie/collectives_flat.h"

#include <utility>

namespace tli::magpie {

namespace {

std::vector<Rank>
allRanks(int p)
{
    std::vector<Rank> v(p);
    for (int i = 0; i < p; ++i)
        v[i] = i;
    return v;
}

} // namespace

sim::Task<void>
FlatCollectives::barrier(Rank self, int seq)
{
    // Dissemination barrier: ceil(log2 p) rounds; in round k, rank r
    // signals (r + 2^k) mod p and waits for (r - 2^k) mod p.
    const int p = size();
    int round = 0;
    for (int dist = 1; dist < p; dist <<= 1, ++round) {
        const int tag = tagFor(seq, round);
        sendAny(self, (self + dist) % p, tag, Vec{});
        (void)co_await recvAny<Vec>(self, tag);
    }
}

sim::Task<Vec>
FlatCollectives::bcast(Rank self, int seq, Rank root, Vec data)
{
    co_return co_await bcastOver(self, tagFor(seq, 0), allRanks(size()),
                                 root, std::move(data));
}

sim::Task<Vec>
FlatCollectives::reduce(Rank self, int seq, Rank root, Vec contrib,
                        ReduceOp op)
{
    co_return co_await reduceOver(self, tagFor(seq, 0), allRanks(size()),
                                  root, std::move(contrib), op);
}

sim::Task<Vec>
FlatCollectives::allreduce(Rank self, int seq, Vec contrib, ReduceOp op)
{
    // MPICH 1.x style: reduce to rank 0, then broadcast.
    auto all = allRanks(size());
    Vec total = co_await reduceOver(self, tagFor(seq, 0), all, 0,
                                    std::move(contrib), op);
    co_return co_await bcastOver(self, tagFor(seq, 1), all, 0,
                                 std::move(total));
}

sim::Task<Table>
FlatCollectives::gather(Rank self, int seq, Rank root, Vec contrib)
{
    // Linear gather (as MPICH 1.x): everyone sends straight to root.
    const int tag = tagFor(seq, 0);
    if (self != root) {
        sendAny(self, root, tag, LabelledVec{self, std::move(contrib)});
        co_return Table{};
    }
    Table out(size());
    out[root] = std::move(contrib);
    for (int i = 0; i < size() - 1; ++i) {
        LabelledVec lv = co_await recvAny<LabelledVec>(self, tag);
        out[lv.first] = std::move(lv.second);
    }
    co_return out;
}

sim::Task<Vec>
FlatCollectives::scatter(Rank self, int seq, Rank root, Table chunks)
{
    const int tag = tagFor(seq, 0);
    if (self == root) {
        TLI_ASSERT(static_cast<int>(chunks.size()) == size(),
                   "scatter needs one chunk per rank");
        for (Rank r = 0; r < size(); ++r) {
            if (r != root)
                sendAny(self, r, tag, std::move(chunks[r]));
        }
        co_return std::move(chunks[root]);
    }
    co_return co_await recvAny<Vec>(self, tag);
}

sim::Task<Table>
FlatCollectives::allgather(Rank self, int seq, Vec contrib)
{
    // Ring allgather: p-1 steps, each step forwards the piece received
    // in the previous step to the right neighbour.
    const int p = size();
    const int tag = tagFor(seq, 0);
    const Rank right = (self + 1) % p;

    Table out(p);
    out[self] = contrib;
    LabelledVec current{self, std::move(contrib)};
    for (int step = 0; step < p - 1; ++step) {
        sendAny(self, right, tag,
                LabelledVec{current.first, std::move(current.second)});
        current = co_await recvAny<LabelledVec>(self, tag);
        out[current.first] = current.second;
    }
    co_return out;
}

sim::Task<Table>
FlatCollectives::alltoall(Rank self, int seq, Table sendbuf)
{
    // Pairwise exchange: step s talks to (self + s) and (self - s).
    const int p = size();
    TLI_ASSERT(static_cast<int>(sendbuf.size()) == p,
               "alltoall needs one row per rank");
    TLI_ASSERT(p < phasesPerCall_, "alltoall limited to ", phasesPerCall_,
               " ranks");
    Table out(p);
    out[self] = std::move(sendbuf[self]);
    for (int step = 1; step < p; ++step) {
        const int tag = tagFor(seq, step);
        const Rank to = (self + step) % p;
        const Rank from = (self - step + p) % p;
        sendAny(self, to, tag, std::move(sendbuf[to]));
        out[from] = co_await recvAny<Vec>(self, tag);
    }
    co_return out;
}

sim::Task<Vec>
FlatCollectives::scan(Rank self, int seq, Vec contrib, ReduceOp op)
{
    // Recursive doubling inclusive scan.
    const int p = size();
    Vec result = contrib;
    Vec partial = std::move(contrib);
    int round = 0;
    for (int dist = 1; dist < p; dist <<= 1, ++round) {
        const int tag = tagFor(seq, round);
        if (self + dist < p)
            sendAny(self, self + dist, tag, partial);
        if (self - dist >= 0) {
            Vec lower = co_await recvAny<Vec>(self, tag);
            op.combine(partial, lower);
            op.combine(result, lower);
        }
    }
    co_return result;
}

sim::Task<Vec>
FlatCollectives::reduceScatter(Rank self, int seq, Table contrib,
                               ReduceOp op)
{
    // MPICH 1.x: reduce the whole table to rank 0, then scatter.
    const int p = size();
    TLI_ASSERT(static_cast<int>(contrib.size()) == p,
               "reduceScatter needs one row per destination rank");
    const int gather_tag = tagFor(seq, 0);
    const int scatter_tag = tagFor(seq, 1);
    if (self != 0) {
        sendAny(self, 0, gather_tag, std::move(contrib));
        co_return co_await recvAny<Vec>(self, scatter_tag);
    }
    for (int i = 0; i < p - 1; ++i) {
        Table t = co_await recvAny<Table>(self, gather_tag);
        op.combine(contrib, t);
    }
    for (Rank r = 1; r < p; ++r)
        sendAny(self, r, scatter_tag, std::move(contrib[r]));
    co_return std::move(contrib[0]);
}

} // namespace tli::magpie
