/**
 * @file
 * Flat, topology-oblivious collective algorithms in the style of
 * MPICH 1.x: binomial broadcast/reduce trees, dissemination barrier,
 * linear gather/scatter, ring allgather, pairwise alltoall, recursive
 * doubling scan, and reduce+scatter for reduce_scatter. These serve as
 * the baseline the MagPIe algorithms are compared against (paper §6).
 */

#ifndef TWOLAYER_MAGPIE_COLLECTIVES_FLAT_H_
#define TWOLAYER_MAGPIE_COLLECTIVES_FLAT_H_

#include "magpie/impl.h"

namespace tli::magpie {

class FlatCollectives : public CollectivesImpl
{
  public:
    using CollectivesImpl::CollectivesImpl;

    sim::Task<void> barrier(Rank self, int seq) override;
    sim::Task<Vec> bcast(Rank self, int seq, Rank root, Vec data) override;
    sim::Task<Vec> reduce(Rank self, int seq, Rank root, Vec contrib,
                          ReduceOp op) override;
    sim::Task<Vec> allreduce(Rank self, int seq, Vec contrib,
                             ReduceOp op) override;
    sim::Task<Table> gather(Rank self, int seq, Rank root,
                            Vec contrib) override;
    sim::Task<Vec> scatter(Rank self, int seq, Rank root,
                           Table chunks) override;
    sim::Task<Table> allgather(Rank self, int seq, Vec contrib) override;
    sim::Task<Table> alltoall(Rank self, int seq, Table sendbuf) override;
    sim::Task<Vec> scan(Rank self, int seq, Vec contrib,
                        ReduceOp op) override;
    sim::Task<Vec> reduceScatter(Rank self, int seq, Table contrib,
                                 ReduceOp op) override;

};

} // namespace tli::magpie

#endif // TWOLAYER_MAGPIE_COLLECTIVES_FLAT_H_
