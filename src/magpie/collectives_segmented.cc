#include "magpie/collectives_segmented.h"

#include <utility>
#include <vector>

namespace tli::magpie {

namespace {

/** How a vector of @p elems doubles splits at @p segBytes granularity.
 *  Always at least one chunk, so empty payloads still flow. */
struct Chunking
{
    std::size_t elemsPerChunk = 1;
    int count = 1;
};

Chunking
chunkingFor(std::size_t elems, std::uint32_t segBytes)
{
    Chunking ck;
    ck.elemsPerChunk = std::max<std::size_t>(1, segBytes / sizeof(double));
    ck.count = elems == 0
                   ? 1
                   : static_cast<int>((elems + ck.elemsPerChunk - 1) /
                                      ck.elemsPerChunk);
    return ck;
}

Vec
chunkOf(const Vec &v, const Chunking &ck, int j)
{
    const std::size_t begin =
        std::min(v.size(), static_cast<std::size_t>(j) * ck.elemsPerChunk);
    const std::size_t end =
        std::min(v.size(), begin + ck.elemsPerChunk);
    return Vec(v.begin() + static_cast<std::ptrdiff_t>(begin),
               v.begin() + static_cast<std::ptrdiff_t>(end));
}

} // namespace

sim::Task<Vec>
SegmentedCollectives::bcast(Rank self, int seq, Rank root, Vec data)
{
    co_return co_await bcastAuto(self, tagFor(seq, 0), tagFor(seq, 1),
                                 root, std::move(data),
                                 Choice::segmented(segmentBytes_));
}

sim::Task<Vec>
SegmentedCollectives::bcastTuned(Rank self, int seq, Rank root, Vec data,
                                 Choice rootChoice)
{
    co_return co_await bcastAuto(self, tagFor(seq, 0), tagFor(seq, 1),
                                 root, std::move(data), rootChoice);
}

sim::Task<Vec>
SegmentedCollectives::bcastAuto(Rank self, int wan_tag, int local_tag,
                                Rank root, Vec data, Choice rootChoice)
{
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);
    const auto members = t.ranksInCluster(mine);
    const Rank local_root = (mine == root_cluster) ? root : coordOf(mine);

    if (self == root) {
        if (rootChoice.family == Family::magpie) {
            // Byte- and timing-identical to MagpieCollectives::bcast.
            for (ClusterId c = 0; c < t.clusterCount(); ++c) {
                if (c != root_cluster)
                    sendAny(self, coordOf(c), wan_tag, data);
            }
            co_return co_await bcastOver(self, local_tag, members, root,
                                         std::move(data));
        }
        TLI_ASSERT(rootChoice.family == Family::segmented &&
                       rootChoice.segmentBytes > 0,
                   "bcast root needs a magpie or segmented choice");
        const Chunking ck = chunkingFor(data.size(),
                                        rootChoice.segmentBytes);
        const std::vector<Rank> children =
            bcastChildren(members, root, self);
        for (int j = 0; j < ck.count; ++j) {
            const LabelledVec lv{ck.count - 1 - j, chunkOf(data, ck, j)};
            for (ClusterId c = 0; c < t.clusterCount(); ++c) {
                if (c != root_cluster)
                    sendAny(self, coordOf(c), wan_tag, lv);
            }
            for (Rank child : children)
                sendAny(self, child, local_tag, lv);
        }
        co_return data;
    }

    // Remote coordinators feed from the wide area; everyone else from
    // their binomial parent inside the cluster.
    const int recv_tag = (self == local_root) ? wan_tag : local_tag;
    panda::Message first = co_await panda_.recv(self, recv_tag);
    const std::vector<Rank> children =
        bcastChildren(members, local_root, self);

    if (first.holds<Vec>()) {
        // Classic protocol: one full-payload message, then forward to
        // the subtree children exactly as bcastOver would.
        Vec full = first.take<Vec>();
        for (Rank child : children)
            sendAny(self, child, local_tag, full);
        co_return full;
    }

    // Segmented stream: forward each labelled chunk on arrival; the
    // label counts the chunks still to come.
    Vec out;
    LabelledVec lv = first.take<LabelledVec>();
    for (;;) {
        for (Rank child : children)
            sendAny(self, child, local_tag, lv);
        out.insert(out.end(), lv.second.begin(), lv.second.end());
        if (lv.first == 0)
            break;
        lv = co_await recvAny<LabelledVec>(self, recv_tag);
    }
    co_return out;
}

sim::Task<Vec>
SegmentedCollectives::reduce(Rank self, int seq, Rank root, Vec contrib,
                             ReduceOp op)
{
    co_return co_await reduceSegmented(self, tagFor(seq, 0),
                                       tagFor(seq, 1), root,
                                       std::move(contrib), op);
}

sim::Task<Vec>
SegmentedCollectives::allreduce(Rank self, int seq, Vec contrib,
                                ReduceOp op)
{
    Vec total = co_await reduceSegmented(self, tagFor(seq, 0),
                                         tagFor(seq, 1), 0,
                                         std::move(contrib), op);
    co_return co_await bcastAuto(self, tagFor(seq, 2), tagFor(seq, 3), 0,
                                 std::move(total),
                                 Choice::segmented(segmentBytes_));
}

sim::Task<Vec>
SegmentedCollectives::reduceSegmented(Rank self, int local_tag,
                                      int wan_tag, Rank root, Vec contrib,
                                      ReduceOp op)
{
    TLI_ASSERT(segmentBytes_ > 0, "segmented reduce needs a segment size");
    const auto &t = topo();
    const ClusterId mine = t.clusterOf(self);
    const ClusterId root_cluster = t.clusterOf(root);
    const auto members = t.ranksInCluster(mine);
    const Rank local_root = (mine == root_cluster) ? root : coordOf(mine);
    const Chunking ck = chunkingFor(contrib.size(), segmentBytes_);
    const TreePosition pos = reduceTreePosition(members, local_root, self);

    std::vector<Vec> acc(ck.count);
    for (int j = 0; j < ck.count; ++j)
        acc[j] = chunkOf(contrib, ck, j);
    std::vector<int> got(ck.count, 0);
    int cursor = 0;

    // Emit a completed segment one level up: to the binomial parent, or
    // (at a coordinator) across the wide area straight to the root,
    // which instead keeps its own completed segments.
    auto emit = [&](int j) {
        if (pos.hasParent)
            sendAny(self, pos.parent, local_tag,
                    LabelledVec{j, std::move(acc[j])});
        else if (mine != root_cluster)
            sendAny(self, root, wan_tag,
                    LabelledVec{j, std::move(acc[j])});
    };
    auto flush = [&]() {
        while (cursor < ck.count && got[cursor] == pos.childCount) {
            emit(cursor);
            ++cursor;
        }
    };

    flush();
    for (int i = 0; i < pos.childCount * ck.count; ++i) {
        LabelledVec lv = co_await recvAny<LabelledVec>(self, local_tag);
        TLI_ASSERT(lv.first >= 0 && lv.first < ck.count,
                   "segment index out of range: ", lv.first);
        op.combine(acc[lv.first], lv.second);
        ++got[lv.first];
        flush();
    }

    if (self != root)
        co_return Vec{};

    // Root: fold in every remote cluster's segment stream.
    for (int i = 0; i < (t.clusterCount() - 1) * ck.count; ++i) {
        LabelledVec lv = co_await recvAny<LabelledVec>(self, wan_tag);
        TLI_ASSERT(lv.first >= 0 && lv.first < ck.count,
                   "segment index out of range: ", lv.first);
        op.combine(acc[lv.first], lv.second);
    }
    Vec out;
    out.reserve(contrib.size());
    for (const Vec &seg : acc)
        out.insert(out.end(), seg.begin(), seg.end());
    co_return out;
}

} // namespace tli::magpie
